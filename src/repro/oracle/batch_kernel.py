"""Vectorized batch kernel for the frozen DISO overlay search.

``BENCH_query_latency.json`` puts the frozen DISO query at hundreds of
microseconds, almost all of it Python interpreter cost: heap pushes,
tuple unpacking, and per-edge relaxation in
:meth:`repro.oracle.frozen.FrozenDISO._overlay_search`.  For a *batch*
of queries that cost can be paid once per array operation instead of
once per edge: this module evaluates the overlay phase of many queries
simultaneously as a Bellman-Ford-style frontier relaxation over a
``batch x num_transit`` key space, with NumPy doing every gather,
add, mask, and scatter-min.

Bitwise parity with the scalar path
-----------------------------------
The scalar overlay search is a Dijkstra with incumbent pruning; the
kernel is a frontier fixed-point over the *same* rows.  Both converge
to the same labels **bitwise** because every candidate distance is
produced by the same single float addition ``dist[tail] + weight`` of
the same operands — order of relaxation never changes the value of a
min over identical candidates, only how often it is recomputed.  Three
deliberate choices preserve that property (property-tested in
``tests/test_batch_query.py``; each was validated against the scalar
engine over thousands of road-network queries during development):

* **Base-zero repairs.**  The scalar path repairs an affected rank's
  row lazily with ``(base, limit)`` bounds from the search state.  The
  kernel also repairs lazily — an affected ``(query, rank)`` row is
  patched the first time the key survives pruning into the expansion
  frontier — but always with ``base=0`` and ``limit`` equal to the
  query's incumbent at repair time: below the limit the repaired
  weights are the exact (unclamped) values, so candidates are
  identical floats regardless of *when* the repair runs, and heads cut
  by the limit could never win a relaxation anyway (see
  :meth:`DisoBatchKernel._recomputed_weights` for the monotonicity
  argument).
* **Incumbent pruning stays.**  A frontier key is dropped when
  ``dist + min_row_weight >= best[query]`` — the same answer-preserving
  bound the scalar search uses before repairing.
* **No reassociation.**  The kernel never fuses path additions: each
  relaxation is one ``+``; sums are never reordered into different
  float associations (the reason the *ADISO* merged A* search is **not**
  served by this kernel — its float association order is query-state
  dependent, and measured divergence vs. the DISO answer is 1-2 ulp on
  a fifth of road-network queries, so ADISO batches take the scalar
  path; see ``oracle/batch.py``).

The kernel returns ``inf`` for a query whose best overlay answer is
unreachable; the caller (:meth:`FrozenDISO.query_many`) applies the
same DISO-S fallback the scalar path would.

NumPy is an optional dependency of this repo: when it is missing,
:data:`HAVE_NUMPY` is ``False`` and callers route batches through the
scalar loop instead — same answers, no speedup.
"""

from __future__ import annotations

from bisect import bisect_left
from heapq import heappop, heappush

try:  # NumPy is optional at runtime; the scalar path needs none of this.
    import numpy as np
except ImportError:  # pragma: no cover - exercised via HAVE_NUMPY gating
    np = None

from repro.oracle.base import INFINITY

HAVE_NUMPY = np is not None

#: Sweep-pivot tuning: when the frontier exceeds ``PIVOT_MIN`` keys,
#: only the closest ``PIVOT_FRAC`` fraction (never fewer than
#: ``PIVOT_MIN``) is expanded and the rest deferred — a partition-based
#: approximation of Dijkstra ordering that keeps incumbent pruning
#: effective without per-key heap cost.  Values picked empirically on
#: the road2k workload (0.5/2048 beat 0.65-0.75 and 3072+ variants).
PIVOT_FRAC = 0.5
PIVOT_MIN = 2048

#: Queries per kernel invocation.  The sweep state is ``O(block *
#: num_transit)``; past ~300-400 road2k queries the working set leaves
#: cache and throughput regresses, so larger batches are processed in
#: blocks of this size by the caller.
DEFAULT_BLOCK = 384


class DisoBatchKernel:
    """Flat-array form of one frozen DISO index, shared by all batches.

    Built lazily (and kept) by :meth:`FrozenDISO.query_many`; holds
    only read-only views derived from the
    :class:`~repro.overlay.frozen_index.FrozenIndex`, so one kernel is
    safely shared across threads like the index itself.
    """

    def __init__(self, frozen, index) -> None:
        if not HAVE_NUMPY:
            raise RuntimeError("DisoBatchKernel requires numpy")
        self.frozen = frozen
        self.index = index
        self.num_transit = index.num_transit()
        # Global overlay CSR over rank space: row r's (head_rank,
        # weight) pairs, weight-sorted exactly as overlay_rank_rows.
        heads: list[int] = []
        weights: list[float] = []
        offsets = [0]
        head_position: list[dict[int, int]] = []
        for rows in index.overlay_rank_rows:
            positions = {}
            for position, (head, weight) in enumerate(rows):
                heads.append(head)
                weights.append(weight)
                positions[head] = position
            offsets.append(len(heads))
            head_position.append(positions)
        self.csr_heads = np.array(heads, dtype=np.int32)
        self.csr_weights = np.array(weights, dtype=np.float64)
        offsets64 = np.array(offsets, dtype=np.int64)
        self.csr_offsets = offsets64[:-1].astype(np.int32)
        self.csr_degrees = (offsets64[1:] - offsets64[:-1]).astype(np.int32)
        self.min_weight = np.array(index.overlay_min_weight, dtype=np.float64)
        self._head_position = head_position
        # Per-rank repair structures, built on first repair of a rank
        # (see _repair_rows).
        self._repair_rows_cache: dict[int, tuple[list, list]] = {}
        # Per-rank "does the subtree at preorder position p contain a
        # transit stop?" flags, for the O(1) no-op repair precheck.
        self._subtree_transit_cache: dict[int, list[bool]] = {}

    # ------------------------------------------------------------------
    # Position-space repair engine
    # ------------------------------------------------------------------
    def _repair_rows(self, rank: int) -> tuple[list, list]:
        """Static repair structures of ``rank``, in preorder space.

        ``FrozenIndex.recomputed_out_weights`` spends most of each
        repair re-testing conditions that do not depend on the failure
        set: whether a predecessor is a tree node at all, whether it is
        a non-root transit node, and what ``stored[pred] + weight``
        evaluates to.  This pays all of those once per rank:

        * ``in_candidates[pos]`` — for tree position ``pos``, the
          ``(value, pred_pos, edge_id)`` seed candidates from *tree*
          predecessors that pass the static filters, sorted by value
          (the precomputed ``value = stored[pred_pos] + weight`` is the
          same single float addition the dynamic path performs, so the
          first candidate surviving the failure checks is bitwise the
          same seed the full scan would take as its minimum);
        * ``out_edges[pos]`` — ``(weight, head_pos, edge_id)`` for the
          repair Dijkstra, empty for non-root transit positions (which
          the dynamic path refuses to expand).

        Built lazily per rank and cached: a workload only ever repairs
        the ranks its failures hit.
        """
        cached = self._repair_rows_cache.get(rank)
        if cached is not None:
            return cached
        index = self.index
        tree = index.trees[rank]
        order = tree.order
        pos_of = tree.pos_of
        stored = tree.dist
        root = tree.root
        flags = index.transit_flags
        frozen = self.frozen
        in_candidates: list[list[tuple[float, int, int]]] = []
        out_edges: list[list[tuple[float, int, int]]] = []
        for position, node in enumerate(order):
            candidates = []
            for pred, weight, edge_id in frozen._radjacency[node]:
                pred_pos = pos_of.get(pred)
                if pred_pos is None:
                    continue
                if flags[pred] and pred != root:
                    continue
                candidates.append(
                    (stored[pred_pos] + weight, pred_pos, edge_id)
                )
            candidates.sort()
            in_candidates.append(candidates)
            if flags[node] and node != root:
                out_edges.append([])
                continue
            expansion = []
            for head, weight, edge_id in frozen._adjacency[node]:
                head_pos = pos_of.get(head)
                if head_pos is None:
                    continue
                expansion.append((weight, head_pos, edge_id))
            out_edges.append(expansion)
        built = (in_candidates, out_edges)
        self._repair_rows_cache[rank] = built
        return built

    def _recomputed_weights(
        self,
        rank: int,
        failed_ids: frozenset[int],
        hits: list[int],
        limit: float,
    ) -> dict[int, float]:
        """Changed overlay head weights of ``rank`` under ``failed_ids``.

        Position-space mirror of
        :meth:`FrozenIndex.recomputed_out_weights` with ``base=0``:
        identical candidate floats (see :meth:`_repair_rows`),
        identical seeds, the same confined Dijkstra — only the static
        membership tests are precomputed.  Returns ``{head_rank:
        new_weight}`` with ``inf`` for heads the repair cannot reach.

        ``limit`` is the caller's incumbent ``best[query]`` at repair
        time: seeds and settlements at distance ``>= limit`` are cut,
        reporting those heads as ``inf``.  Answer-safe because repaired
        weights only ever *grow* past the stored ones and incumbents
        only shrink — a cut head's true weight ``w >= limit >=
        best_final`` means every overlay candidate through it
        (``frontier_dist + w >= w``) fails the sweep's
        ``candidate < best`` filter anyway, for the whole rest of the
        search.  Within the limit the repaired values are bitwise the
        ``limit=inf`` values.
        """
        index = self.index
        tree = index.trees[rank]
        size = tree.size
        in_candidates, out_edges = self._repair_rows(rank)
        intervals: list[tuple[int, int]] = []
        last_end = -1
        for pos in sorted(hits):
            if pos < last_end:
                continue
            last_end = pos + size[pos]
            intervals.append((pos, last_end))
        # Dense call-local scratch over tree positions: trees average a
        # few dozen nodes, so a flat list beats dict churn in the hot
        # relaxation loop while keeping the kernel free of shared
        # mutable state.
        new_dist = [INFINITY] * len(size)
        settled = bytearray(len(size))
        heap: list[tuple[float, int]] = []
        push = heappush
        single = len(intervals) == 1
        start0, end0 = intervals[0]
        # Seed every affected position from its cheapest surviving
        # tree predecessor outside the affected region.
        for begin, end in intervals:
            for position in range(begin, end):
                for value, pred_pos, edge_id in in_candidates[position]:
                    if value >= limit:
                        break  # candidates are value-sorted
                    if edge_id in failed_ids:
                        continue
                    if single:
                        if start0 <= pred_pos < end0:
                            continue
                    elif any(s <= pred_pos < e for s, e in intervals):
                        continue
                    new_dist[position] = value
                    push(heap, (value, position))
                    break
        # Repair Dijkstra confined to the affected positions.
        pop = heappop
        while heap:
            d, position = pop(heap)
            if d >= limit:
                break  # min-heap: everything left is >= limit too
            if settled[position]:
                continue
            if d > new_dist[position]:
                continue
            settled[position] = 1
            for weight, head_pos, edge_id in out_edges[position]:
                if settled[head_pos]:
                    continue
                if single:
                    if not start0 <= head_pos < end0:
                        continue
                elif not any(s <= head_pos < e for s, e in intervals):
                    continue
                if edge_id in failed_ids:
                    continue
                candidate = d + weight
                if candidate >= limit:
                    continue
                if candidate < new_dist[head_pos]:
                    new_dist[head_pos] = candidate
                    push(heap, (candidate, head_pos))
        # Collect the overlay heads inside the affected region.
        surviving = index.overlay_head_ranks[rank]
        transit_pos = tree.transit_pos
        transit_ranks = tree.transit_ranks
        count = len(transit_pos)
        changed: dict[int, float] = {}
        for begin, end in intervals:
            i = bisect_left(transit_pos, begin)
            while i < count and transit_pos[i] < end:
                head_rank = transit_ranks[i]
                if head_rank in surviving:
                    changed[head_rank] = new_dist[transit_pos[i]]
                i += 1
        return changed

    # ------------------------------------------------------------------
    # Row repair
    # ------------------------------------------------------------------
    def _subtree_transit(self, rank: int) -> list[bool]:
        """Per-position "subtree contains a transit stop" flags."""
        flags = self._subtree_transit_cache.get(rank)
        if flags is None:
            tree = self.index.trees[rank]
            transit_pos = tree.transit_pos
            size = tree.size
            count = len(transit_pos)
            flags = []
            for position in range(len(size)):
                where = bisect_left(transit_pos, position)
                flags.append(
                    where < count
                    and transit_pos[where] < position + size[position]
                )
            self._subtree_transit_cache[rank] = flags
        return flags

    def _patched_row(
        self, rank: int, failed_ids: frozenset[int], limit: float
    ) -> tuple[list[int], list[float]] | None:
        """The weight patch of ``rank``'s overlay row under ``failed_ids``.

        ``limit`` bounds the repair (see :meth:`_recomputed_weights`);
        pass ``inf`` for the untruncated row.

        Returns ``None`` when the failures leave the stored row exact
        (the common case); otherwise ``(positions, values)`` — the row
        positions whose weights the repair moved and their new values.
        A value of ``inf`` (head unreachable inside the tree region, or
        cut by ``limit``) is written as-is: its candidates fail the
        sweep's ``candidate < best`` filter, exactly as the scalar
        relaxation's skip-on-no-improvement drops them.
        """
        index = self.index
        tree = index.trees[rank]
        edge_pos_get = tree.edge_pos.get
        # A failure only moves overlay weights when some hit subtree
        # contains a transit stop (only transit positions feed overlay
        # heads); one flag probe per hit rules the no-op repairs out
        # before paying for the full recomputation.
        subtree_transit = self._subtree_transit(rank)
        hits: list[int] = []
        has_transit = False
        for edge_id in sorted(failed_ids):
            hit = edge_pos_get(edge_id)
            if hit is None:
                continue
            hits.append(hit)
            if subtree_transit[hit]:
                has_transit = True
        if not has_transit:
            return None
        changed = self._recomputed_weights(rank, failed_ids, hits, limit)
        if not changed:
            return None
        head_position = self._head_position[rank]
        return (
            [head_position[head] for head in changed],
            list(changed.values()),
        )

    # ------------------------------------------------------------------
    # The sweep
    # ------------------------------------------------------------------
    def run(
        self,
        prepared: list[tuple[int, int, frozenset[int]]],
        forward_arena=None,
        backward_arena=None,
    ):
        """Best overlay-phase answers for ``prepared``, as a float64 array.

        ``prepared`` holds ``(source_index, target_index,
        failed_edge_ids)`` triples with distinct endpoints in dense
        index space.  Entries left at ``inf`` are unreachable through
        the overlay *and* the locality filter — the caller decides
        whether a DISO-S fallback applies.
        """
        from repro.pathing.csr_bounded import csr_access_batch

        batch = len(prepared)
        num_transit = self.num_transit
        num_keys = batch * num_transit
        index = self.index

        # ---- access phase + affected (query, rank) discovery --------
        inverted = index.inverted
        pending: dict[int, tuple[int, frozenset[int]]] = {}
        aux_capacity = 0
        degrees = self.csr_degrees
        for position, (_, _, failed_ids) in enumerate(prepared):
            if not failed_ids:
                continue
            base = position * num_transit
            seen_ranks: set[int] = set()
            for failed_id in failed_ids:
                for rank in inverted.get(failed_id, ()):
                    if rank not in seen_ranks:
                        seen_ranks.add(rank)
                        pending[base + rank] = (rank, failed_ids)
                        aux_capacity += int(degrees[rank])
        seeds, tails_flat, upper_list = csr_access_batch(
            self.frozen, prepared, index.transit_flags, index.rank_of,
            num_transit, forward_arena, backward_arena,
        )
        upper = np.array(upper_list, dtype=np.float64)

        # ---- lazy repairs: per-key CSR with an aux segment -----------
        # Every key (query * T + rank) starts by aliasing the global
        # row.  Affected keys are repaired *lazily*: when a key first
        # survives pruning into the expansion frontier, its patched row
        # is written into the preallocated aux segment and its offset /
        # degree scatter-overwritten.  Keys the search never reaches —
        # the majority on road workloads, exactly as in the scalar
        # engine — never pay for a repair.  A repaired row never grows
        # (patching only rewrites or drops heads), so the stored
        # degrees bound the aux capacity.
        entry_offsets = np.tile(self.csr_offsets, batch)
        entry_degrees = np.tile(self.csr_degrees, batch)
        base_size = len(self.csr_weights)
        heads = np.empty(base_size + aux_capacity, dtype=np.int32)
        weights = np.empty(base_size + aux_capacity, dtype=np.float64)
        heads[:base_size] = self.csr_heads
        weights[:base_size] = self.csr_weights
        cursor = base_size
        affected_mask = np.zeros(num_keys, dtype=bool)
        if pending:
            affected_mask[
                np.fromiter(pending, dtype=np.int64, count=len(pending))
            ] = True
            # dist[key] at the time of the key's last repair; a later
            # improvement below it re-opens the repair (see the repair
            # block) so the ``best - dist`` limit stays valid.
            repair_floor = np.full(num_keys, -INFINITY)

        # ---- seed --------------------------------------------------
        # Index arrays (frontier, head_key, updated) are kept at the
        # platform index dtype: fancy indexing with anything narrower
        # makes NumPy cast the whole index array on every gather and
        # scatter, which at ~40 sweeps per block adds up.
        query_of = np.repeat(np.arange(batch, dtype=np.intp), num_transit)
        min_weight = np.tile(self.min_weight, batch)
        seed_query = np.array(seeds[0], dtype=np.intp)
        seed_key = seed_query * num_transit + np.array(
            seeds[1], dtype=np.intp
        )
        seed_dist = np.array(seeds[2], dtype=np.float64)
        tails = np.full(num_keys, INFINITY)
        tails[np.array(tails_flat[0], dtype=np.int64)] = np.array(
            tails_flat[1], dtype=np.float64
        )
        dist = np.full(num_keys, INFINITY)
        dist[seed_key] = seed_dist
        best = upper.copy()
        # Direct seed->tail candidates arm the incumbent immediately,
        # exactly as the scalar search seeds its bound.
        seed_candidates = seed_dist + tails[seed_key]
        improving = seed_candidates < best[seed_query]
        np.minimum.at(
            best, seed_query[improving], seed_candidates[improving]
        )
        frontier = seed_key
        mark = np.zeros(num_keys, dtype=bool)

        # ---- frontier sweeps ----------------------------------------
        while frontier.size:
            frontier_dist = dist[frontier]
            frontier_query = query_of[frontier]
            frontier_best = best[frontier_query]
            keep = (
                frontier_dist + min_weight[frontier]
            ) < frontier_best
            frontier = frontier[keep]
            frontier_dist = frontier_dist[keep]
            frontier_query = frontier_query[keep]
            frontier_best = frontier_best[keep]
            if not frontier.size:
                break
            # Partition pivot: expand the nearest keys first so the
            # incumbents tighten before the far keys are considered.
            # The pivot value comes from a strided sample — it only
            # schedules work, so a few percent of quantile noise is
            # free speed (partitioning the full frontier costs more
            # than it saves).
            if frontier.size > PIVOT_MIN:
                stride = frontier.size // PIVOT_MIN + 1
                sample = frontier_dist[::stride]
                split = max(1, int(sample.size * PIVOT_FRAC))
                if split < sample.size:
                    pivot = np.partition(sample, split - 1)[split - 1]
                    selected = frontier_dist <= pivot
                    deferred = frontier[~selected]
                    frontier = frontier[selected]
                    frontier_dist = frontier_dist[selected]
                    frontier_query = frontier_query[selected]
                    frontier_best = frontier_best[selected]
                else:
                    deferred = frontier[:0]
            else:
                deferred = frontier[:0]
            # Repair every affected key about to expand for the first
            # time (repairs are search-state independent below their
            # limit, so the answer is the same as repairing upfront —
            # this just skips the keys the sweep never visits).  The
            # limit is the scalar engine's own ``best - dist`` bound: a
            # head cut by it satisfies ``dist + w >= best`` for the
            # current label, and if the label later *improves* the key
            # is re-flagged below and its row rewritten in place with
            # the wider limit before its next expansion.  The
            # few-ulps pad keeps a candidate that float rounding could
            # drag a hair under ``best`` from being cut — without it
            # bitwise parity with the scalar path would hinge on
            # rounding direction.
            if pending:
                todo = frontier[affected_mask[frontier]]
                if todo.size:
                    affected_mask[todo] = False
                    # Rank-sorted order keeps consecutive repairs on
                    # the same per-rank structures (cache locality).
                    todo = todo[np.argsort(todo % num_transit)]
                    todo_dist = dist[todo]
                    todo_best = best[todo // num_transit]
                    # np.spacing(inf) is nan — keep inf incumbents as
                    # an unbounded limit.
                    limits = np.where(
                        np.isfinite(todo_best),
                        todo_best - todo_dist + 4.0 * np.spacing(todo_best),
                        INFINITY,
                    )
                    base_heads = self.csr_heads
                    base_weights = self.csr_weights
                    base_offsets = self.csr_offsets
                    for key, key_dist, limit in zip(
                        todo.tolist(), todo_dist.tolist(), limits.tolist()
                    ):
                        rank, failed_ids = pending[key]
                        repair_floor[key] = key_dist
                        row = self._patched_row(rank, failed_ids, limit)
                        if row is None:
                            # Limit-independent no-op (no transit stop
                            # in any hit subtree, or no surviving
                            # heads) — never worth re-opening.
                            repair_floor[key] = -INFINITY
                            continue
                        positions, values = row
                        slot = entry_offsets[key]
                        if slot < base_size:  # first repair: claim aux
                            slot = cursor
                            cursor += int(degrees[rank])
                            entry_offsets[key] = slot
                        offset = base_offsets[rank]
                        degree = int(degrees[rank])
                        stop = offset + degree
                        heads[slot:slot + degree] = (
                            base_heads[offset:stop]
                        )
                        weights[slot:slot + degree] = (
                            base_weights[offset:stop]
                        )
                        for position, value in zip(positions, values):
                            weights[slot + position] = value
            # Expand: flatten every kept key's row into one edge list.
            row_offset = entry_offsets[frontier]
            row_degree = entry_degrees[frontier]
            total_edges = int(row_degree.sum())
            if total_edges:
                cumulative = np.cumsum(row_degree)
                edge_position = np.arange(total_edges, dtype=np.intp)
                edge_position += np.repeat(
                    row_offset - cumulative + row_degree, row_degree
                )
                candidate = np.repeat(frontier_dist, row_degree)
                candidate += weights[edge_position]
                passing = candidate < np.repeat(frontier_best, row_degree)
                head_key = np.repeat(
                    frontier_query * num_transit, row_degree
                )[passing]
                head_key += heads[edge_position[passing]]
                candidate = candidate[passing]
                improved = candidate < dist[head_key]
                head_key = head_key[improved]
                candidate = candidate[improved]
            else:
                head_key = frontier[:0]
            # Update: scatter-min, then re-derive incumbents from the
            # tail lane for every key that moved.
            if head_key.size:
                np.minimum.at(dist, head_key, candidate)
                # Winner dedup: keep the entries whose candidate became
                # the key's new label.  Exact float ties can leave a key
                # duplicated here — harmless (its re-expansion relaxes
                # identical candidates) and far cheaper than a key-space
                # scan per sweep.
                new_dist = dist[head_key]
                winners = candidate == new_dist
                updated = head_key[winners]
                new_dist = new_dist[winners]
                tail_dist = tails[updated]
                updated_query = query_of[updated]
                arming = (new_dist + tail_dist) < best[updated_query]
                if arming.any():
                    np.minimum.at(
                        best,
                        updated_query[arming],
                        new_dist[arming] + tail_dist[arming],
                    )
                if pending:
                    # A repaired key whose label dropped below its
                    # repair-time floor gets its row rebuilt with the
                    # wider ``best - dist`` limit before it expands
                    # again.
                    reopen = updated[new_dist < repair_floor[updated]]
                    if reopen.size:
                        affected_mask[reopen] = True
                live = updated[new_dist < best[updated_query]]
            else:
                live = frontier[:0]
            if deferred.size:
                if live.size:
                    mark[live] = True
                    mark[deferred] = True
                    frontier = np.flatnonzero(mark)
                    mark[frontier] = False
                else:
                    frontier = deferred
            else:
                # Tie-duplicated keys from the winner dedup must not
                # survive into the next frontier (duplicates would
                # re-amplify through every expansion); the deferred
                # branch above already dedups through ``mark``.
                frontier = np.unique(live)
        return best
