"""Smoke test for the run-everything experiment driver."""

from __future__ import annotations

from repro.experiments.summary import format_all, run_all


def test_run_all_produces_every_section():
    progress: list[str] = []
    sections = run_all(
        scale=0.18, query_count=3, seed=7, progress=progress.append
    )
    names = [name for name, _ in sections]
    assert names == [
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "figure4",
        "figure5",
        "figure6",
        "accuracy",
        "theta",
        "alpha",
        "affected",
        "throughput",
        "maintenance",
        "replay",
    ]
    assert progress == names
    report = format_all(sections)
    for name in names:
        assert f"# {name}" in report
    assert all(text.strip() for _, text in sections)
