"""Resumable build checkpoints: the spool directory.

Layout::

    <spool>/
        graph.dsobuild          the build-graph container (fingerprint)
        shards/
            tree-<label>.shard      one CRC-framed file per finished unit
            landmark-<label>.shard

Every file is written atomically (temp file + ``os.replace`` in the
same directory), so a kill at any instant leaves either a complete,
CRC-valid file or a stray ``*.tmp`` that the next run ignores.  Resume
is therefore a directory scan: decode every shard, drop (and delete)
any that fail CRC or frame validation, and rebuild only the missing
units.

The container doubles as the spool's fingerprint.  A resuming build
recomputes its container bytes from scratch — same graph, same
parameters, same selection — and compares them to the spooled file;
any mismatch means the shards on disk belong to a *different* build,
and the spool is rejected with :class:`FormatError` rather than
silently merged into a wrong index.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro.exceptions import FormatError
from repro.build.shards import (
    LANDMARK_KIND,
    TREE_KIND,
    LandmarkShard,
    TreeShard,
    decode_shard,
    kind_name,
)

CONTAINER_NAME = "graph.dsobuild"
SHARD_DIR = "shards"

Unit = tuple[int, int]  # (kind, label)


def _atomic_write(path: Path, data: bytes) -> None:
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # dsolint: disable=DSO403 -- tmp cleanup is best-effort; the original failure re-raises below
            pass
        raise


class BuildSpool:
    """A checkpoint directory for one build's container and shards."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.shard_dir = self.root / SHARD_DIR

    @property
    def container_path(self) -> Path:
        return self.root / CONTAINER_NAME

    def prepare(self, container_bytes: bytes) -> bool:
        """Create or validate the spool; return True when resuming.

        Raises
        ------
        FormatError
            When the spool already holds a container whose bytes differ
            from this build's — graph, parameters, or selection drifted
            since the shards were written.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        self.shard_dir.mkdir(exist_ok=True)
        if self.container_path.exists():
            existing = self.container_path.read_bytes()
            if existing != container_bytes:
                raise FormatError(
                    f"{self.root}: spool fingerprint mismatch — the "
                    f"checkpointed build used a different graph, "
                    f"parameters, or landmark selection; use a fresh "
                    f"spool directory (or delete this one) to rebuild"
                )
            return True
        _atomic_write(self.container_path, container_bytes)
        return False

    def shard_path(self, kind: int, label: int) -> Path:
        return self.shard_dir / f"{kind_name(kind)}-{label}.shard"

    def write_shard(self, kind: int, label: int, data: bytes) -> None:
        _atomic_write(self.shard_path(kind, label), data)

    def load_shards(
        self,
    ) -> tuple[dict[Unit, TreeShard | LandmarkShard], int]:
        """Scan the spool; return (valid decoded shards, corrupt count).

        Corrupt or truncated shard files (a kill mid-rename cannot
        produce one, but disk faults or manual tampering can) are
        deleted so the unit rebuilds, never trusted.
        """
        results: dict[Unit, TreeShard | LandmarkShard] = {}
        corrupt = 0
        if not self.shard_dir.is_dir():
            return results, corrupt
        for path in sorted(self.shard_dir.glob("*.shard")):
            try:
                shard = decode_shard(path.read_bytes())
            except FormatError:
                corrupt += 1
                try:
                    path.unlink()
                except OSError:  # dsolint: disable=DSO403 -- corrupt shard is rebuilt either way; deletion only reclaims disk
                    pass
                continue
            if isinstance(shard, TreeShard):
                results[(TREE_KIND, shard.root)] = shard
            else:
                results[(LANDMARK_KIND, shard.landmark)] = shard
        return results, corrupt
