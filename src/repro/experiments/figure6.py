"""Figure 6 — robustness: query time versus failure intensity.

The paper sweeps the two failure knobs of the query generator on a road
dataset (a, b) and on Pokec (c, d):

* ``f_gen`` — essential on-path failures (a, c): landmark-guided
  methods (ADISO, ADISO-P, A*) degrade together as lower bounds become
  stale, while DISO is insensitive;
* ``p`` — background random failure rate (b, d): DISO- degrades sharply
  (BFS detection + from-scratch recomputation) while DISO stays flat —
  the headline evidence for the second-level index.
"""

from __future__ import annotations

from repro.experiments.harness import compare_methods
from repro.experiments.report import render_series
from repro.experiments.table5 import standard_factories
from repro.workload.datasets import DATASETS, load_dataset
from repro.workload.queries import generate_queries


def run_figure6(
    dataset: str = "NY",
    scale: float = 0.5,
    f_gen_values: tuple[int, ...] = (0, 5, 10),
    p_values: tuple[float, ...] = (0.0, 0.0005, 0.002),
    query_count: int = 15,
    seed: int = 7,
    methods: tuple[str, ...] | None = None,
    fddo_landmarks: int = 12,
) -> dict[str, object]:
    """Sweep ``f_gen`` (at p = 0.05%) and ``p`` (at f_gen = 5).

    Returns per-method query-time series for both sweeps.
    """
    spec = DATASETS[dataset]
    graph = load_dataset(dataset, scale=scale, seed=seed)
    factories = standard_factories(
        spec, seed=seed, fddo_landmarks=fddo_landmarks
    )
    if methods is not None:
        factories = {
            name: factory
            for name, factory in factories.items()
            if name in methods
        }

    fgen_series: dict[str, list[float]] = {m: [] for m in factories}
    for f_gen in f_gen_values:
        queries = generate_queries(
            graph, query_count, f_gen=f_gen, p=0.0005, seed=seed
        )
        results = compare_methods(graph, factories, queries)
        for method, batch in results.items():
            fgen_series[method].append(batch.query_ms)

    p_series: dict[str, list[float]] = {m: [] for m in factories}
    for p in p_values:
        queries = generate_queries(
            graph, query_count, f_gen=5, p=p, seed=seed
        )
        results = compare_methods(graph, factories, queries)
        for method, batch in results.items():
            p_series[method].append(batch.query_ms)

    return {
        "dataset": dataset,
        "f_gen_values": list(f_gen_values),
        "p_values": list(p_values),
        "query_ms_vs_fgen": fgen_series,
        "query_ms_vs_p": p_series,
    }


def format_figure6(data: dict[str, object]) -> str:
    """Render both Figure 6 sweeps as text series."""
    parts = [
        render_series(
            f"Figure 6: query time (ms) vs f_gen ({data['dataset']})",
            "f_gen",
            data["f_gen_values"],
            data["query_ms_vs_fgen"],
        ),
        render_series(
            f"Figure 6: query time (ms) vs p ({data['dataset']})",
            "p",
            data["p_values"],
            data["query_ms_vs_p"],
        ),
    ]
    return "\n\n".join(parts)
