"""Tests for the index audit tool."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.oracle.audit import audit_index
from repro.oracle.diso import DISO
from repro.oracle.maintenance import OracleMaintainer
from util import random_graph


class TestAuditCleanIndex:
    def test_fresh_index_is_sound(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        assert audit_index(oracle) == []

    def test_queries_do_not_dirty_the_index(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        oracle.query(0, 143, failed={(0, 1), (50, 51)})
        assert audit_index(oracle) == []

    def test_maintained_index_is_sound(self):
        graph = random_graph(4)
        oracle = DISO(graph, tau=2, theta=4.0)
        maintainer = OracleMaintainer(oracle)
        edges = sorted(graph.edge_set())
        maintainer.delete_edge(*edges[0])
        maintainer.insert_edge(3, 21, 0.05)
        maintainer.change_weight(*edges[10], 9.0)
        assert audit_index(oracle) == []


class TestAuditDetectsCorruption:
    def test_detects_stale_overlay_weight(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        overlay = oracle.distance_graph.graph
        tail, head, weight = next(iter(overlay.edges()))
        overlay.set_weight(tail, head, weight * 7)
        report = audit_index(oracle)
        assert any("weight" in line or "neighbour" in line for line in report)

    def test_detects_missing_overlay_edge(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        overlay = oracle.distance_graph.graph
        tail, head, _ = next(iter(overlay.edges()))
        overlay.remove_edge(tail, head)
        assert audit_index(oracle) != []

    def test_detects_tree_distance_corruption(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        root = next(iter(oracle.trees.roots()))
        tree = oracle.trees.tree(root)
        victim = next(n for n in tree.dist if n != root)
        tree.dist[victim] += 5.0
        report = audit_index(oracle)
        assert any(f"tree of {root}" in line for line in report)

    def test_detects_graph_drift(self, small_road):
        """Mutating the graph behind the oracle's back is caught."""
        oracle = DISO(small_road, tau=3, theta=1.0)
        edge = next(iter(small_road.edges()))
        small_road.set_weight(edge[0], edge[1], edge[2] * 50)
        assert audit_index(oracle) != []

    def test_detects_stale_inverted_entries(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        oracle.inverted_index._index[(-1, -2)] = {0}
        report = audit_index(oracle)
        assert any("stale" in line for line in report)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_fresh_indices_always_sound(seed):
    graph = random_graph(seed)
    oracle = DISO(graph, tau=2, theta=4.0)
    assert audit_index(oracle) == []
