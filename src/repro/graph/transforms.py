"""Graph transformations used in data preparation and preprocessing.

These mirror the paper's Section 7.1 data-preparation steps (symmetrising
undirected social networks, collapsing multi-edges, assigning uniform
random weights) plus utilities needed internally (strongly connected
components, largest-SCC restriction so queries always have answers).
"""

from __future__ import annotations

import random
from collections.abc import Iterable

from repro.graph.digraph import DiGraph, Edge


def symmetrize(graph: DiGraph) -> DiGraph:
    """Return a copy with a reverse edge added for every edge.

    Matches the paper: "For the undirected graphs, we make them directed
    by adding an edge (v, u) for each edge (u, v)".  When both directions
    already exist the minimum weight per direction is kept.
    """
    result = graph.copy()
    for tail, head, weight in list(graph.edges()):
        result.add_edge(head, tail, weight)
    return result


def assign_uniform_weights(
    graph: DiGraph,
    seed: int = 0,
    low: float = 0.0,
    high: float = 1.0,
) -> DiGraph:
    """Return a copy with every edge weight resampled uniformly.

    Matches the paper's protocol for social networks: "we set the weight
    of each edge as a real value that is sampled uniformly at random from
    0 to 1".  Weights get a tiny positive floor so they stay strictly
    positive (zero-weight cycles break path uniqueness assumptions).
    """
    rng = random.Random(seed)
    result = DiGraph()
    for node in graph.nodes():
        result.add_node(node)
    for tail, head, _ in sorted(graph.edges()):
        weight = low + rng.random() * (high - low)
        result.add_edge(tail, head, max(weight, 1e-9))
    return result


def scale_weights(graph: DiGraph, factor: float) -> DiGraph:
    """Return a copy with every weight multiplied by ``factor``."""
    if factor < 0:
        raise ValueError("factor must be non-negative")
    result = DiGraph()
    for node in graph.nodes():
        result.add_node(node)
    for tail, head, weight in graph.edges():
        result.add_edge(tail, head, weight * factor)
    return result


def remove_self_loops(graph: DiGraph) -> DiGraph:
    """Return a copy without self-loop edges."""
    result = DiGraph()
    for node in graph.nodes():
        result.add_node(node)
    for tail, head, weight in graph.edges():
        if tail != head:
            result.add_edge(tail, head, weight)
    return result


def strongly_connected_components(graph: DiGraph) -> list[set[int]]:
    """Return the strongly connected components of ``graph``.

    Iterative Tarjan's algorithm (no recursion, safe for deep graphs).
    Components are returned in reverse topological order of the
    condensation, as Tarjan produces them.
    """
    index_of: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    components: list[set[int]] = []
    counter = 0

    for root in graph.nodes():
        if root in index_of:
            continue
        # Each frame is (node, iterator over successors).
        work = [(root, iter(graph.successors(root)))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(graph.successors(succ))))
                    advanced = True
                    break
                if succ in on_stack:
                    if index_of[succ] < lowlink[node]:
                        lowlink[node] = index_of[succ]
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                if lowlink[node] < lowlink[parent]:
                    lowlink[parent] = lowlink[node]
            if lowlink[node] == index_of[node]:
                component: set[int] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def largest_strongly_connected_subgraph(graph: DiGraph) -> DiGraph:
    """Return the subgraph induced by the largest SCC.

    Benchmarks restrict queries to the largest SCC so that every (s, t)
    pair has a finite failure-free distance, mirroring how shortest-path
    papers sample query endpoints from the main component.
    """
    components = strongly_connected_components(graph)
    if not components:
        return DiGraph()
    largest = max(components, key=len)
    return graph.subgraph(largest)


def is_strongly_connected(graph: DiGraph) -> bool:
    """Return whether ``graph`` is strongly connected (and non-empty)."""
    n = graph.number_of_nodes()
    if n == 0:
        return False
    components = strongly_connected_components(graph)
    return len(components) == 1


def without_edges(graph: DiGraph, edges: Iterable[Edge]) -> DiGraph:
    """Return a copy of ``graph`` with ``edges`` removed.

    Missing edges are silently skipped, matching the semantics of the
    failed-edge set ``F`` (a query may name edges that were already
    removed by a concurrent maintenance operation).
    """
    result = graph.copy()
    for tail, head in edges:
        if result.has_edge(tail, head):
            result.remove_edge(tail, head)
    return result


def induced_weight_map(graph: DiGraph) -> dict[Edge, float]:
    """Return a ``{(tail, head): weight}`` dictionary for ``graph``."""
    return {(tail, head): weight for tail, head, weight in graph.edges()}
