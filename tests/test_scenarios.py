"""Tests for temporal failure scenarios and the replay experiment."""

from __future__ import annotations

import pytest

from repro.experiments.replay import format_replay, run_replay
from repro.workload.scenarios import (
    FAIL,
    RECOVER,
    FailureSchedule,
    FailureEvent,
    generate_failure_schedule,
    sample_query_times,
)
from repro.graph.digraph import DiGraph


class TestScheduleGeneration:
    def test_deterministic(self, small_road):
        a = generate_failure_schedule(small_road, seed=3)
        b = generate_failure_schedule(small_road, seed=3)
        assert a.events == b.events

    def test_every_failure_recovers(self, small_road):
        schedule = generate_failure_schedule(small_road, seed=1)
        balance: dict = {}
        for event in schedule.events:
            delta = 1 if event.kind == FAIL else -1
            balance[event.edge] = balance.get(event.edge, 0) + delta
            assert balance[event.edge] in (0, 1)
        # Past the full timeline everything is recovered.
        assert all(v == 0 for v in balance.values())

    def test_events_sorted(self, small_road):
        schedule = generate_failure_schedule(small_road, seed=2)
        times = [event.time for event in schedule.events]
        assert times == sorted(times)

    def test_rate_scales_event_count(self, small_road):
        low = generate_failure_schedule(
            small_road, failures_per_unit=0.2, seed=1
        )
        high = generate_failure_schedule(
            small_road, failures_per_unit=2.0, seed=1
        )
        assert high.changes() > low.changes()

    def test_edgeless_graph_raises(self):
        g = DiGraph()
        g.add_node(0)
        with pytest.raises(ValueError):
            generate_failure_schedule(g)

    def test_bad_rates_raise(self, small_road):
        with pytest.raises(ValueError):
            generate_failure_schedule(small_road, failures_per_unit=0)
        with pytest.raises(ValueError):
            generate_failure_schedule(small_road, mean_downtime=-1)


class TestScheduleQueries:
    def build_manual(self) -> FailureSchedule:
        return FailureSchedule(
            events=[
                FailureEvent(1.0, (0, 1), FAIL),
                FailureEvent(3.0, (2, 3), FAIL),
                FailureEvent(4.0, (0, 1), RECOVER),
                FailureEvent(9.0, (2, 3), RECOVER),
            ],
            duration=10.0,
        )

    def test_active_at(self):
        schedule = self.build_manual()
        assert schedule.active_at(0.5) == frozenset()
        assert schedule.active_at(2.0) == {(0, 1)}
        assert schedule.active_at(3.5) == {(0, 1), (2, 3)}
        assert schedule.active_at(5.0) == {(2, 3)}
        assert schedule.active_at(9.5) == frozenset()

    def test_peak_failures(self):
        assert self.build_manual().peak_failures() == 2

    def test_changes(self):
        assert self.build_manual().changes() == 4

    def test_sample_query_times(self):
        times = sample_query_times(10, 50.0, seed=1)
        assert len(times) == 10
        assert times == sorted(times)
        assert all(0 <= t < 50.0 for t in times)


class TestReplayExperiment:
    def test_runs_and_formats(self):
        data = run_replay(
            dataset="NY",
            scale=0.2,
            duration=20.0,
            query_count=8,
            seed=7,
            fddo_landmarks=5,
        )
        assert data["events"] > 0
        assert data["dso_total_seconds"] > 0
        assert data["fdd_total_seconds"] > 0
        text = format_replay(data)
        assert "DSO (DISO)" in text
        assert "FDD (FDDO)" in text

    def test_dso_total_beats_fdd_total(self):
        """The paper's motivation, quantified: updates dominate."""
        data = run_replay(
            dataset="NY",
            scale=0.25,
            duration=30.0,
            failures_per_unit=0.8,
            query_count=10,
            seed=3,
            fddo_landmarks=6,
        )
        assert data["dso_total_seconds"] < data["fdd_total_seconds"]
