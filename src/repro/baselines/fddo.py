"""FDDO — the fully dynamic distance oracle competitor (LCA of [11]).

Tretyakov et al.'s landmark-based oracle maintains, per landmark, a
shortest path *tree* and answers distance queries from the trees alone.
The ``LCA`` variant improves the basic ``d(s, l) + d(l, t)`` estimate by
walking the tree paths: whenever the two endpoints share tree structure,
the common prefix is cancelled out.

Adaptation to weighted directed graphs (the paper: "we revise their
update algorithm to make it work for a weighted directed graph"): each
landmark ``l`` keeps a *forward* tree (paths ``l -> v``) and a
*backward* tree (paths ``v -> l`` over reversed edges).  Per-landmark
estimates of ``d(s, t)``, all of which are distances of real paths
(hence upper bounds):

* through the landmark: ``d(s -> l) + d(l -> t)``;
* forward-tree shortcut: when ``s`` is an ancestor of ``t`` in the
  forward tree, the tree path ``s -> t`` gives ``d(l, t) - d(l, s)``;
* backward-tree shortcut: when ``t`` is an ancestor of ``s`` in the
  backward tree, the tree path gives ``d(s -> l) - d(t -> l)``.

The decisive property for the sensitivity comparison: FDDO is a *fully
dynamic* oracle, so a failure set ``F`` forces it to update every
landmark tree containing a failed tree edge **before** answering, and to
roll the update back once the failures recover — queries stall on
updates.  ``query_detailed`` therefore performs update -> answer ->
rollback and its measured time includes both maintenance phases, exactly
the regime the paper measures ("FDDO takes a significant time to update
its structures in querying").
"""

from __future__ import annotations

import time

from repro.graph.digraph import DiGraph, Edge
from repro.landmarks.selection import best_cover_landmarks
from repro.oracle.base import (
    DistanceSensitivityOracle,
    QueryResult,
    QueryStats,
    normalize_failures,
)
from repro.pathing.dijkstra import shortest_path_tree
from repro.pathing.dynamic_spt import apply_failures
from repro.pathing.spt import INFINITY, ShortestPathTree


class FDDOOracle(DistanceSensitivityOracle):
    """Landmark-tree fully dynamic distance oracle (approximate).

    Parameters
    ----------
    graph:
        The input graph.
    num_landmarks:
        The paper uses 50 for FDDO ("with consideration of accuracy and
        efficiency").
    seed:
        Selection seed for the best-cover landmark strategy of [11].
    landmarks:
        Explicit landmark list override.
    """

    name = "FDDO"
    exact = False

    def __init__(
        self,
        graph: DiGraph,
        num_landmarks: int = 50,
        seed: int = 0,
        landmarks: list[int] | None = None,
    ) -> None:
        super().__init__(graph)
        started = time.perf_counter()
        if landmarks is None:
            landmarks = best_cover_landmarks(graph, num_landmarks, seed=seed)
        self.landmark_nodes = list(landmarks)
        self._reverse_graph = graph.reverse()
        self.forward_trees: list[ShortestPathTree] = [
            shortest_path_tree(graph, landmark)
            for landmark in self.landmark_nodes
        ]
        self.backward_trees: list[ShortestPathTree] = [
            shortest_path_tree(self._reverse_graph, landmark)
            for landmark in self.landmark_nodes
        ]
        self.preprocess_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------
    # Estimation from the trees
    # ------------------------------------------------------------------
    def _estimate(self, source: int, target: int) -> float:
        """Upper-bound estimate of ``d(source, target)`` from all trees."""
        best = INFINITY
        for fwd, bwd in zip(self.forward_trees, self.backward_trees):
            to_landmark = bwd.dist.get(source, INFINITY)
            from_landmark = fwd.dist.get(target, INFINITY)
            through = to_landmark + from_landmark
            if through < best:
                best = through
            # Forward-tree shortcut: s an ancestor of t means the tree
            # path s -> t is a real path of length d(l,t) - d(l,s).
            if target in fwd and source in fwd:
                if self._is_ancestor(fwd, source, target):
                    candidate = fwd.dist[target] - fwd.dist[source]
                    if candidate < best:
                        best = candidate
            # Backward-tree shortcut: t an ancestor of s in the reverse
            # tree means a real path s -> t of length d(s,l) - d(t,l).
            if source in bwd and target in bwd:
                if self._is_ancestor(bwd, target, source):
                    candidate = bwd.dist[source] - bwd.dist[target]
                    if candidate < best:
                        best = candidate
        return best

    @staticmethod
    def _is_ancestor(
        tree: ShortestPathTree,
        ancestor: int,
        descendant: int,
    ) -> bool:
        """Walk parent pointers; True when ``ancestor`` is on the path."""
        node: int | None = descendant
        while node is not None:
            if node == ancestor:
                return True
            node = tree.parent.get(node)
        return False

    # ------------------------------------------------------------------
    # Query = update, answer, rollback
    # ------------------------------------------------------------------
    def query_detailed(
        self,
        source: int,
        target: int,
        failed: set[Edge] | frozenset[Edge] | None = None,
    ) -> QueryResult:
        self._validate_endpoints(source, target)
        fail_set = normalize_failures(failed)
        stats = QueryStats()
        started = time.perf_counter()

        reversed_failures = frozenset((b, a) for a, b in fail_set)  # dsolint: disable=DSO101 -- frozenset-to-frozenset flip; no order escapes
        saved: list[tuple[int, str, ShortestPathTree]] = []
        if fail_set:
            update_start = time.perf_counter()
            for idx, tree in enumerate(self.forward_trees):
                if self._tree_hit(tree, fail_set):
                    saved.append((idx, "fwd", tree.copy()))
                    apply_failures(self.graph, tree, set(fail_set))
                    stats.recomputed_nodes += 1
            for idx, tree in enumerate(self.backward_trees):
                if self._tree_hit(tree, reversed_failures):
                    saved.append((idx, "bwd", tree.copy()))
                    apply_failures(
                        self._reverse_graph, tree, set(reversed_failures)
                    )
                    stats.recomputed_nodes += 1
            stats.recompute_seconds += time.perf_counter() - update_start
        stats.affected_count = len(saved)

        estimate = self._estimate(source, target)

        if saved:
            rollback_start = time.perf_counter()
            for idx, direction, tree in saved:
                if direction == "fwd":
                    self.forward_trees[idx] = tree
                else:
                    self.backward_trees[idx] = tree
            stats.recompute_seconds += time.perf_counter() - rollback_start

        stats.total_seconds = time.perf_counter() - started
        return QueryResult(distance=estimate, stats=stats)

    @staticmethod
    def _tree_hit(tree: ShortestPathTree, failed: frozenset[Edge]) -> bool:
        """Whether any failed edge is a tree edge of ``tree``."""
        for tail, head in failed:
            if tree.parent.get(head) == tail:
                return True
        return False

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def index_entries(self) -> dict[str, int]:
        entries = sum(len(t) for t in self.forward_trees)
        entries += sum(len(t) for t in self.backward_trees)
        return {"landmark_tree_entries": entries}
