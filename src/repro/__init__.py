"""repro — practical distance sensitivity oracles for directed graphs.

A from-scratch Python reproduction of Lee & Chung, *Efficient Distance
Sensitivity Oracles for Real-World Graph Data*: the DISO and ADISO
oracles (Transit Node Routing variants with a fault-tolerant two-level
index), the partial-detouring and sparsification boosting techniques,
every substrate they rely on, and the competitors used in the paper's
evaluation.

Quickstart
----------
>>> from repro import DISO, road_network
>>> g = road_network(12, 12, seed=1)
>>> oracle = DISO(g, tau=3, theta=1.0)
>>> d_normal = oracle.query(0, 143)
>>> d_failed = oracle.query(0, 143, failed={(0, 1)})
>>> d_failed >= d_normal
True
"""

from repro.baselines import (
    AStarOracle,
    DHNROracle,
    DijkstraOracle,
    FDDOOracle,
    StaticDijkstraOracle,
)
from repro.cover import (
    hpc_path_cover,
    isc_path_cover,
    pru_path_cover,
)
from repro.exceptions import (
    EdgeNotFoundError,
    FormatError,
    GraphError,
    NegativeWeightError,
    NodeNotFoundError,
    PreprocessingError,
    QueryError,
    ReproError,
)
from repro.graph import (
    DiGraph,
    FrozenGraph,
    SearchArena,
    gnm_random_graph,
    read_dimacs,
    read_edge_list,
    road_network,
    scale_free_network,
)
from repro.landmarks import (
    LandmarkTable,
    best_cover_landmarks,
    max_cover_landmarks,
    random_landmarks,
    sls_landmarks,
)
from repro.oracle import (
    ADISO,
    CachingDISO,
    DISO,
    ADISOPartial,
    DISOBidirectional,
    DISOMinus,
    DISOSparse,
    DistanceSensitivityOracle,
    FailureStateView,
    FrozenADISO,
    FrozenDISO,
    HierarchicalDISO,
    OracleMaintainer,
    QueryEngine,
    QueryResult,
    QueryStats,
    index_size_megabytes,
    load_index,
    load_snapshot,
    query_path,
    save_index,
    save_snapshot,
    snapshot_info,
    validate_path,
)
from repro.serving import QueryService, ServeReport
from repro.workload import Query, generate_queries, load_dataset

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # Graph substrate
    "DiGraph",
    "road_network",
    "scale_free_network",
    "gnm_random_graph",
    "FrozenGraph",
    "SearchArena",
    "read_dimacs",
    "read_edge_list",
    # Covers
    "isc_path_cover",
    "pru_path_cover",
    "hpc_path_cover",
    # Landmarks
    "LandmarkTable",
    "random_landmarks",
    "sls_landmarks",
    "max_cover_landmarks",
    "best_cover_landmarks",
    # Oracles
    "DistanceSensitivityOracle",
    "QueryResult",
    "QueryStats",
    "DISO",
    "DISOBidirectional",
    "CachingDISO",
    "HierarchicalDISO",
    "DISOMinus",
    "ADISO",
    "DISOSparse",
    "ADISOPartial",
    "FrozenDISO",
    "FrozenADISO",
    "OracleMaintainer",
    "FailureStateView",
    "QueryEngine",
    "query_path",
    "validate_path",
    "save_index",
    "load_index",
    "save_snapshot",
    "load_snapshot",
    "snapshot_info",
    "QueryService",
    "ServeReport",
    "index_size_megabytes",
    # Baselines
    "DijkstraOracle",
    "AStarOracle",
    "FDDOOracle",
    "DHNROracle",
    "StaticDijkstraOracle",
    # Workload
    "Query",
    "generate_queries",
    "load_dataset",
    # Errors
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "NegativeWeightError",
    "QueryError",
    "PreprocessingError",
    "FormatError",
]
