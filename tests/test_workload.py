"""Tests for query workload generation and the dataset registry."""

from __future__ import annotations

import random

import pytest

from repro.pathing.dijkstra import shortest_distance, shortest_path
from repro.workload.datasets import (
    DATASETS,
    ROAD_DATASETS,
    SOCIAL_DATASETS,
    dataset_statistics,
    load_dataset,
)
from repro.workload.queries import (
    essential_failures,
    generate_queries,
    generate_query,
    random_failures,
)


class TestEssentialFailures:
    def test_failures_lie_on_evolving_shortest_paths(self, small_road):
        rng = random.Random(3)
        failed = essential_failures(small_road, 0, 140, 4, rng)
        assert len(failed) == 4
        for edge in failed:
            assert small_road.has_edge(*edge)

    def test_each_failure_changes_the_answer(self, small_road):
        """Every essential failure strictly constrains the path."""
        rng = random.Random(5)
        failed = essential_failures(small_road, 0, 140, 5, rng)
        unrestricted = shortest_distance(small_road, 0, 140)
        restricted = shortest_distance(small_road, 0, 140, failed)
        assert restricted >= unrestricted

    def test_stops_when_disconnected(self):
        from repro.graph.generators import path_network

        g = path_network(4, bidirectional=False)
        rng = random.Random(1)
        failed = essential_failures(g, 0, 3, 10, rng)
        # The single path has 3 edges; after one failure 3 is
        # unreachable, so at most 1 essential failure is generated.
        assert len(failed) == 1

    def test_final_path_avoids_failures(self, small_road):
        rng = random.Random(9)
        failed = essential_failures(small_road, 5, 130, 3, rng)
        path = shortest_path(small_road, 5, 130, failed)
        if path is not None:
            assert not (set(path) & failed)


class TestRandomFailures:
    def test_zero_probability(self, small_road):
        rng = random.Random(1)
        assert random_failures(small_road, 0.0, rng) == set()

    def test_all_edges_exist(self, small_road):
        rng = random.Random(1)
        failed = random_failures(small_road, 0.05, rng)
        for edge in failed:
            assert small_road.has_edge(*edge)

    def test_probability_scales_count(self, small_road):
        rng = random.Random(1)
        low = len(random_failures(small_road, 0.01, rng))
        rng = random.Random(1)
        high = len(random_failures(small_road, 0.2, rng))
        assert high > low

    def test_exclusion(self, small_road):
        rng = random.Random(2)
        exclude = set(list(small_road.edge_set())[:50])
        failed = random_failures(small_road, 0.5, rng, exclude=exclude)
        assert not (failed & exclude)

    def test_expected_count_reasonable(self, small_social):
        # Binomial(m, 0.1) should land near m * 0.1.
        m = small_social.number_of_edges()
        counts = []
        for seed in range(20):
            rng = random.Random(seed)
            counts.append(len(random_failures(small_social, 0.1, rng)))
        mean = sum(counts) / len(counts)
        assert 0.06 * m <= mean <= 0.14 * m


class TestGenerateQueries:
    def test_deterministic(self, small_road):
        a = generate_queries(small_road, 5, seed=3)
        b = generate_queries(small_road, 5, seed=3)
        assert a == b

    def test_count_and_distinct_endpoints(self, small_road):
        queries = generate_queries(small_road, 10, seed=1)
        assert len(queries) == 10
        for q in queries:
            assert q.source != q.target

    def test_essential_count_recorded(self, small_road):
        query = generate_queries(small_road, 1, f_gen=3, p=0.0, seed=4)[0]
        assert query.essential_count <= 3
        assert query.num_failures == query.essential_count

    def test_generate_query_direct(self, small_road):
        query = generate_query(small_road, random.Random(4), f_gen=2, p=0.0)
        assert query.source != query.target
        assert query.essential_count <= 2

    def test_zero_failures(self, small_road):
        queries = generate_queries(small_road, 3, f_gen=0, p=0.0, seed=1)
        assert all(q.num_failures == 0 for q in queries)

    def test_node_restriction(self, small_road):
        nodes = [0, 1, 2, 3]
        queries = generate_queries(small_road, 8, seed=2, nodes=nodes)
        for q in queries:
            assert q.source in nodes
            assert q.target in nodes


class TestDatasets:
    def test_registry_families(self):
        for name in ROAD_DATASETS:
            assert DATASETS[name].kind == "road"
        for name in SOCIAL_DATASETS:
            assert DATASETS[name].kind == "social"

    def test_load_road(self):
        g = load_dataset("NY", scale=0.3)
        stats = dataset_statistics(g)
        assert stats["avg_degree"] <= 3.5
        assert stats["max_degree"] <= 16

    def test_load_social(self):
        g = load_dataset("DBLP", scale=0.3)
        stats = dataset_statistics(g)
        assert stats["max_degree"] > 3 * stats["avg_degree"]

    def test_poke_is_dense(self):
        g = load_dataset("POKE", scale=0.3)
        assert g.average_degree() > 10

    def test_scale_grows_graph(self):
        small = load_dataset("NY", scale=0.2)
        large = load_dataset("NY", scale=0.6)
        assert large.number_of_nodes() > small.number_of_nodes()

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("MARS")

    def test_deterministic(self):
        assert load_dataset("CAL", scale=0.2) == load_dataset(
            "CAL", scale=0.2
        )
