"""Bench: DISO's advantage over DI grows with graph scale.

The paper reports DISO ≈ 9× faster than Dijkstra on road networks with
10⁶–10⁷ nodes; at this library's scales the gap is smaller but must
*grow* with n — DISO's query cost is dominated by the (locally bounded)
access searches plus an overlay search over |T| ≪ n nodes, while DI
scans O(n).  This bench sweeps three sizes of the road stand-in and
asserts the monotone trend, the strongest offline evidence that the
reproduction extrapolates to the paper's regime.
"""

from __future__ import annotations

import time

from repro.baselines.dijkstra_oracle import DijkstraOracle
from repro.oracle.diso import DISO
from repro.workload.datasets import load_dataset
from repro.workload.queries import generate_queries

from bench_util import SEED, write_result


def _mean_query_ms(oracle, queries) -> float:
    started = time.perf_counter()
    for q in queries:
        oracle.query(q.source, q.target, q.failed)
    return (time.perf_counter() - started) / len(queries) * 1000.0


def test_advantage_grows_with_scale(benchmark):
    def measure():
        rows = []
        for scale, tau in ((0.3, 3), (1.0, 4), (2.5, 5)):
            graph = load_dataset("USA", scale=scale, seed=SEED)
            queries = generate_queries(
                graph, 10, f_gen=5, p=0.0005, seed=SEED
            )
            diso = DISO(graph, tau=tau, theta=1.0)
            di = DijkstraOracle(graph)
            _mean_query_ms(diso, queries)  # warm
            _mean_query_ms(di, queries)
            diso_ms = _mean_query_ms(diso, queries)
            di_ms = _mean_query_ms(di, queries)
            rows.append(
                (graph.number_of_nodes(), diso_ms, di_ms, di_ms / diso_ms)
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = [
        "DISO vs DI across road-graph scales (paper: ~9x at 24M nodes)",
        "nodes | DISO ms | DI ms  | DI/DISO",
    ]
    for nodes, diso_ms, di_ms, ratio in rows:
        lines.append(
            f"{nodes:5d} | {diso_ms:7.3f} | {di_ms:6.3f} | {ratio:6.2f}x"
        )
    write_result("scaling_advantage", "\n".join(lines))
    # DISO wins at every size, and the advantage grows from the smallest
    # to the largest size (allowing mid-point wobble from timing noise).
    assert all(ratio > 1.0 for _, _, _, ratio in rows)
    assert rows[-1][3] > rows[0][3]
