"""A* — the landmark-based A* search competitor (Section 7.1).

The classical ALT algorithm of Goldberg & Harrelson [31]: A* search with
landmark triangle-inequality lower bounds.  As Delling & Wagner [16]
observed — and as the paper exploits for ADISO — lower bounds computed
on the failure-free graph remain admissible when edge weights increase
(or edges fail), so the search runs on ``(V, E \\ F)`` without touching
the preprocessed landmark table.

Landmarks are selected with the max-cover local-search heuristic of
Goldberg & Werneck [33], matching the paper's experimental setup, with
``N_L = 10`` for fairness with ADISO.
"""

from __future__ import annotations

import time

from repro.graph.digraph import DiGraph, Edge
from repro.landmarks.base import LandmarkTable
from repro.landmarks.selection import max_cover_landmarks
from repro.oracle.base import (
    DistanceSensitivityOracle,
    QueryResult,
    QueryStats,
    normalize_failures,
)
from repro.pathing.astar import astar_search_stats


class AStarOracle(DistanceSensitivityOracle):
    """ALT (A*, Landmarks, Triangle inequality) baseline.

    Parameters
    ----------
    graph:
        The input graph.
    num_landmarks:
        ``N_L``; paper uses 10.
    alpha:
        Coverage slack for the max-cover objective.
    landmarks:
        Explicit landmark list, overriding max-cover selection.
    landmark_table:
        Prebuilt table to share (e.g. with ADISO in experiments where
        the selection method is the variable under test).
    seed:
        Selection PRNG seed.
    """

    name = "A*"
    exact = True

    def __init__(
        self,
        graph: DiGraph,
        num_landmarks: int = 10,
        alpha: float = 0.1,
        landmarks: list[int] | None = None,
        landmark_table: LandmarkTable | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(graph)
        started = time.perf_counter()
        if landmark_table is not None:
            self.landmarks = landmark_table
        else:
            if landmarks is None:
                landmarks = max_cover_landmarks(
                    graph, num_landmarks, seed=seed, alpha=alpha
                )
            self.landmarks = LandmarkTable(graph, landmarks)
        self.preprocess_seconds = time.perf_counter() - started

    def query_detailed(
        self,
        source: int,
        target: int,
        failed: set[Edge] | frozenset[Edge] | None = None,
    ) -> QueryResult:
        self._validate_endpoints(source, target)
        fail_set = normalize_failures(failed)
        stats = QueryStats()
        started = time.perf_counter()
        heuristic = self.landmarks.heuristic_to(target)
        distance, settled = astar_search_stats(
            self.graph, source, target, heuristic, set(fail_set) or None
        )
        stats.graph_settled = settled
        stats.total_seconds = time.perf_counter() - started
        return QueryResult(distance=distance, stats=stats)

    def index_entries(self) -> dict[str, int]:
        return {"landmark_entries": self.landmarks.size_in_entries()}
