"""Bench: dsolint cold vs warm (summary-cached) full-tree lint.

The lint gate runs on every commit, so its wall time is part of the
developer loop; and the whole-program engine's incremental story —
per-file summaries cached by content hash, only the cheap project
pass re-running on a warm tree — is a perf *claim* that should be
measured, not assumed.  This bench lints the four gated trees twice
with a fresh cache file (cold: every file parsed, every rule run;
warm: every file served from cache) and stamps both times plus the
speedup into the ``lint`` section of ``BENCH_build.json``.

The warm/cold ratio is asserted ≥5x: if a refactor drags per-file
work into the project pass (which the cache cannot skip), this bench
is where the regression surfaces.

Standalone usage::

    PYTHONPATH=src:benchmarks python benchmarks/bench_lint.py
    PYTHONPATH=src:benchmarks python benchmarks/bench_lint.py --smoke

``--smoke`` lints ``src/repro/analysis`` only and skips the speedup
assertion (CI containers have noisy clocks at sub-100ms scales).
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path

from repro.analysis import SummaryCache, lint_paths

from bench_util import BUILD_JSON, REPO_ROOT, merge_json, write_result

GATED_TREES = ("src", "tests", "benchmarks", "examples")
SMOKE_TREES = ("src/repro/analysis",)

#: The incremental-lint contract asserted by the full run.
MIN_SPEEDUP = 5.0


def run(smoke: bool = False) -> dict:
    trees = SMOKE_TREES if smoke else GATED_TREES
    targets = [str(REPO_ROOT / tree) for tree in trees]
    with tempfile.TemporaryDirectory() as scratch:
        cache_file = Path(scratch) / "lint-cache.json"

        started = time.perf_counter()
        cold_report = lint_paths(
            targets, cache=SummaryCache(cache_file)
        )
        cold_s = time.perf_counter() - started

        started = time.perf_counter()
        warm_report = lint_paths(
            targets, cache=SummaryCache(cache_file)
        )
        warm_s = time.perf_counter() - started

    if not cold_report.ok:
        raise SystemExit(
            "lint bench refuses to time a red tree: "
            f"{len(cold_report.unsuppressed)} findings"
        )
    if [f.to_dict() for f in warm_report.findings] != [
        f.to_dict() for f in cold_report.findings
    ]:
        raise SystemExit("cached lint diverged from the cold pass")

    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    return {
        "trees": list(trees),
        "files": len(cold_report.files),
        "findings": len(cold_report.unsuppressed),
        "suppressed": len(cold_report.suppressed),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(speedup, 1),
        "warm_cache_hits": warm_report.stats.get("cache_hits", 0),
    }


def format_table(result: dict) -> str:
    lines = [
        "dsolint full-tree lint (cold vs summary-cached warm)",
        f"  files        {result['files']}",
        f"  cold pass    {result['cold_s']:.3f} s",
        f"  warm pass    {result['warm_s']:.3f} s",
        f"  speedup      {result['speedup']:.1f}x",
    ]
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny tree, no speedup assertion",
    )
    args = parser.parse_args()
    result = run(smoke=args.smoke)
    print(format_table(result))
    if args.smoke:
        print("smoke run OK (cold/warm parity held)")
        return
    if result["speedup"] < MIN_SPEEDUP:
        raise SystemExit(
            f"incremental lint speedup {result['speedup']}x is below "
            f"the {MIN_SPEEDUP}x contract"
        )
    path = merge_json({"lint": result}, BUILD_JSON)
    write_result("bench_lint", format_table(result))
    print(f"merged into {path}")


def test_lint_bench_smoke():
    result = run(smoke=True)
    assert result["files"] > 0
    assert result["warm_cache_hits"] == result["files"]


if __name__ == "__main__":
    main()
