"""Full consistency matrix: every oracle on every dataset family.

Runs the paper's query workload on tiny instances of all six registered
datasets and checks, per dataset:

* all exact methods agree with Dijkstra,
* all approximate methods never underestimate,
* repeated querying leaves every oracle deterministic.
"""

from __future__ import annotations

import pytest

from repro.baselines.astar_oracle import AStarOracle
from repro.baselines.dijkstra_oracle import DijkstraOracle
from repro.baselines.fddo import FDDOOracle
from repro.oracle.adiso import ADISO
from repro.oracle.adiso_p import ADISOPartial
from repro.oracle.diso import DISO
from repro.oracle.diso_bi import DISOBidirectional
from repro.oracle.diso_minus import DISOMinus
from repro.oracle.diso_s import DISOSparse
from repro.workload.datasets import DATASETS
from repro.workload.datasets import load_dataset
from repro.workload.queries import generate_queries

SCALE = 0.18
QUERIES = 6


@pytest.fixture(scope="module")
def instances():
    data = {}
    for name in DATASETS:
        graph = load_dataset(name, scale=SCALE, seed=3)
        queries = generate_queries(graph, QUERIES, f_gen=3, p=0.002, seed=5)
        truth = [
            DijkstraOracle(graph).query(q.source, q.target, q.failed)
            for q in queries
        ]
        data[name] = (graph, queries, truth)
    return data


def _exact_oracles(graph, spec):
    return [
        DISO(graph, tau=spec.tau_diso, theta=spec.theta),
        DISOBidirectional(graph, tau=spec.tau_diso, theta=spec.theta),
        DISOMinus(graph, tau=spec.tau_diso, theta=spec.theta),
        ADISO(
            graph,
            tau=spec.tau_adiso,
            theta=spec.theta,
            num_landmarks=4,
            seed=1,
        ),
        AStarOracle(graph, num_landmarks=4, seed=1),
    ]


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_exact_methods_agree(name, instances):
    graph, queries, truth = instances[name]
    spec = DATASETS[name]
    for oracle in _exact_oracles(graph, spec):
        for query, expected in zip(queries, truth):
            got = oracle.query(query.source, query.target, query.failed)
            if expected == float("inf"):
                assert got == expected, (oracle.name, query)
            else:
                assert got == pytest.approx(expected), (oracle.name, query)


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_approximate_methods_upper_bound(name, instances):
    graph, queries, truth = instances[name]
    spec = DATASETS[name]
    if spec.kind == "road":
        approx = ADISOPartial(
            graph,
            tau=spec.tau_adiso,
            theta=spec.theta,
            tau_h=1,
            num_landmarks=4,
            seed=1,
        )
    else:
        approx = DISOSparse(
            graph, beta=spec.beta, tau=spec.tau_diso, theta=spec.theta
        )
    fddo = FDDOOracle(graph, num_landmarks=6, seed=1)
    for oracle in (approx, fddo):
        for query, expected in zip(queries, truth):
            got = oracle.query(query.source, query.target, query.failed)
            assert got >= expected - 1e-9, (oracle.name, query)


@pytest.mark.parametrize("name", sorted(DATASETS))
def test_oracles_deterministic(name, instances):
    graph, queries, _ = instances[name]
    spec = DATASETS[name]
    oracle = DISO(graph, tau=spec.tau_diso, theta=spec.theta)
    first = [
        oracle.query(q.source, q.target, q.failed) for q in queries
    ]
    second = [
        oracle.query(q.source, q.target, q.failed) for q in queries
    ]
    assert first == second
