"""Correctness tests for ADISO (Theorems 2-3) and the DISO- ablation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.landmarks.base import LandmarkTable
from repro.oracle.adiso import ADISO
from repro.oracle.diso import DISO
from repro.oracle.diso_minus import DISOMinus
from repro.pathing.dijkstra import shortest_distance
from util import random_failures_from, random_graph


class TestADISOConstruction:
    def test_landmarks_selected(self, small_road):
        oracle = ADISO(small_road, tau=3, num_landmarks=4)
        assert len(oracle.landmarks) == 4

    def test_explicit_landmarks(self, small_road):
        oracle = ADISO(small_road, tau=3, landmarks=[0, 143])
        assert oracle.landmarks.landmarks == (0, 143)

    def test_shared_landmark_table(self, small_road):
        table = LandmarkTable(small_road, [0, 143])
        oracle = ADISO(small_road, tau=3, landmark_table=table)
        assert oracle.landmarks is table

    def test_index_includes_landmarks(self, small_road):
        oracle = ADISO(small_road, tau=3, num_landmarks=4)
        assert oracle.index_entries()["landmark_entries"] > 0


class TestADISOQueries:
    def test_same_node(self, small_road):
        oracle = ADISO(small_road, tau=3, num_landmarks=4)
        assert oracle.query(9, 9, failed={(9, 10)}) == 0.0

    def test_failure_free_exact(self, small_road):
        oracle = ADISO(small_road, tau=3, num_landmarks=4)
        for target in (3, 60, 143):
            assert oracle.query(0, target) == pytest.approx(
                shortest_distance(small_road, 0, target)
            )

    def test_exact_with_failures(self, small_road):
        oracle = ADISO(small_road, tau=3, num_landmarks=4)
        failed = {(0, 1), (40, 41), (100, 101), (12, 11)}
        for target in (3, 60, 143):
            assert oracle.query(0, target, failed) == pytest.approx(
                shortest_distance(small_road, 0, target, failed)
            )

    def test_matches_diso(self, small_road):
        adiso = ADISO(small_road, tau=3, num_landmarks=4)
        diso = DISO(small_road, tau=3, theta=1.0)
        failed = {(5, 6), (77, 78)}
        for s, t in [(0, 143), (12, 95), (143, 0)]:
            assert adiso.query(s, t, failed) == pytest.approx(
                diso.query(s, t, failed)
            )

    def test_no_index_mutation(self, small_road):
        oracle = ADISO(small_road, tau=3, num_landmarks=4)
        overlay_before = {
            (t, h): w for t, h, w in oracle.distance_graph.graph.edges()
        }
        oracle.query(0, 143, failed={(0, 1), (50, 51)})
        overlay_after = {
            (t, h): w for t, h, w in oracle.distance_graph.graph.edges()
        }
        assert overlay_before == overlay_after


class TestDISOMinus:
    def test_exact_on_fixtures(self, small_road):
        oracle = DISOMinus(small_road, tau=3, theta=1.0)
        failed = {(0, 1), (40, 41)}
        for target in (3, 60, 143):
            assert oracle.query(0, target, failed) == pytest.approx(
                shortest_distance(small_road, 0, target, failed)
            )

    def test_affected_superset_of_diso(self, small_road):
        """BFS detection over-approximates the tree-based detection."""
        diso = DISOMinus(small_road, tau=3, theta=1.0)
        reference = DISO(small_road, transit=diso.transit)
        from repro.oracle.base import QueryStats

        failed = frozenset({(10, 11), (70, 71)})
        bfs_affected = diso._find_affected_nodes(failed, QueryStats())
        tree_affected = reference._find_affected_nodes(failed, QueryStats())
        assert tree_affected <= bfs_affected


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=20_000),
    fail_seed=st.integers(min_value=0, max_value=20_000),
    fail_count=st.integers(min_value=0, max_value=10),
    s=st.integers(min_value=0, max_value=29),
    t=st.integers(min_value=0, max_value=29),
)
def test_adiso_exact_random(seed, fail_seed, fail_count, s, t):
    """Theorems 2-3 on random graphs with random failure sets."""
    graph = random_graph(seed)
    oracle = ADISO(graph, tau=2, theta=4.0, num_landmarks=3, seed=seed)
    failed = random_failures_from(graph, fail_seed, fail_count)
    expected = shortest_distance(graph, s, t, failed)
    assert oracle.query(s, t, failed) == pytest.approx(expected)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=20_000),
    fail_seed=st.integers(min_value=0, max_value=20_000),
    s=st.integers(min_value=0, max_value=29),
    t=st.integers(min_value=0, max_value=29),
)
def test_diso_minus_exact_random(seed, fail_seed, s, t):
    graph = random_graph(seed)
    oracle = DISOMinus(graph, tau=2, theta=4.0)
    failed = random_failures_from(graph, fail_seed, 6)
    expected = shortest_distance(graph, s, t, failed)
    assert oracle.query(s, t, failed) == pytest.approx(expected)
