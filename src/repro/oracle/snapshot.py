"""Frozen-index snapshots: one binary file, mapped by every worker.

The frozen query plane (:mod:`repro.oracle.frozen`) already stores the
hot index data as flat buffers — the CSR graph, preorder trees,
distance-graph rows, landmark tables.  This module serializes exactly
those buffers into a versioned binary container so a serving fleet can
``mmap`` one file from every worker process: the kernel shares the
read-only pages across processes, nothing is pickled, and per-worker
startup is bounded by rebuilding the small Python-object views (dicts
and adjacency tuples) over the mapped storage, never by re-running
preprocessing or ``freeze()``.

Layout (DESIGN.md §7)::

    magic   8 bytes   b"DSOSNAP1"
    hlen    4 bytes   little-endian uint32, header byte length
    header  hlen      UTF-8 JSON (format version, engine class, section
                      table, payload CRC-32, metadata)
    pad     0-7       zero bytes aligning the payload to 8
    payload           concatenated raw little-endian array sections,
                      each 8-byte aligned

Sections are raw ``array`` buffers — typecode ``q`` (int64) or ``d``
(float64) — addressed by ``(offset, count)`` relative to the payload
start.  The loader never copies them: each section becomes a
``memoryview(...).cast(typecode)`` over the mapping.  Integrity is a
CRC-32 over the whole payload, verified on load (skippable for hot
restart paths that trust the file).

Answer parity with the in-memory frozen engines is exact and
property-tested (``tests/test_snapshot.py``): the loader reconstructs
the derived structures with the same deterministic code paths
``freeze()`` uses, so every query performs identical arithmetic.
"""

from __future__ import annotations

import json
import mmap
import struct
import sys
import zlib
from array import array
from pathlib import Path

from repro.exceptions import FormatError
from repro.graph.csr import FrozenGraph
from repro.landmarks.base import FrozenLandmarkTable
from repro.oracle.frozen import FrozenADISO, FrozenDISO
from repro.overlay.frozen_index import FrozenIndex, FrozenTree

SNAPSHOT_MAGIC = b"DSOSNAP1"
SNAPSHOT_VERSION = 1

_ITEM_SIZE = 8  # both section dtypes ("q" and "d") are 8-byte items


def _align8(value: int) -> int:
    return (value + 7) & ~7


class SectionWriter:
    """Accumulates named array sections and lays them out 8-aligned."""

    def __init__(self) -> None:
        self.table: list[dict] = []
        self.chunks: list[bytes] = []
        self.size = 0

    def add(self, name: str, typecode: str, values) -> None:
        data = array(typecode, values)
        if sys.byteorder != "little":  # pragma: no cover - x86/arm LE
            data.byteswap()
        raw = data.tobytes()
        offset = _align8(self.size)
        if offset != self.size:
            self.chunks.append(b"\x00" * (offset - self.size))
        self.table.append(
            {
                "name": name,
                "typecode": typecode,
                "offset": offset,
                "count": len(data),
            }
        )
        self.chunks.append(raw)
        self.size = offset + len(raw)

    def payload(self) -> bytes:
        return b"".join(self.chunks)


# Historical internal name, kept for callers that predate the rename.
_SectionWriter = SectionWriter


def pack_container(
    writer: SectionWriter,
    *,
    magic: bytes = SNAPSHOT_MAGIC,
    version: int = SNAPSHOT_VERSION,
    engine: str | None = None,
    meta: dict | None = None,
) -> bytes:
    """Serialize accumulated sections into one container byte string.

    This is the DSOSNAP1 framing (DESIGN.md §7) with ``magic`` and
    ``version`` as parameters: sibling planes — the parallel build
    plane's graph container in :mod:`repro.build.graph_store` — reuse
    the exact same layout, writer, and reader without masquerading as
    serving snapshots.  ``magic`` must be exactly 8 bytes.

    The output is a pure function of the sections and ``meta`` (the
    header JSON is dumped with sorted keys, no timestamps are added),
    so equal inputs produce bitwise-equal containers — the property the
    build plane's checkpoint fingerprinting relies on.
    """
    if len(magic) != len(SNAPSHOT_MAGIC):
        raise FormatError(
            f"container magic must be {len(SNAPSHOT_MAGIC)} bytes, "
            f"got {magic!r}"
        )
    payload = writer.payload()
    header = {
        "format_version": version,
        "endianness": "little",
        "payload_size": len(payload),
        "payload_crc32": zlib.crc32(payload),
        "sections": writer.table,
        "meta": meta if meta is not None else {},
    }
    if engine is not None:
        header["engine"] = engine
    header_bytes = json.dumps(
        header, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    prefix_len = len(magic) + 4 + len(header_bytes)
    padding = b"\x00" * (_align8(prefix_len) - prefix_len)
    return b"".join(
        (magic, struct.pack("<I", len(header_bytes)), header_bytes, padding,
         payload)
    )


def _add_csr(writer: SectionWriter, prefix: str, frozen: FrozenGraph) -> None:
    writer.add(f"{prefix}.node_ids", "q", frozen.node_ids)
    writer.add(f"{prefix}.offsets", "q", frozen._offsets)
    writer.add(f"{prefix}.heads", "q", frozen._heads)
    writer.add(f"{prefix}.weights", "d", frozen._weights)


def _add_index(writer: _SectionWriter, index: FrozenIndex) -> None:
    writer.add("index.transit_nodes", "q", index.transit_nodes)

    overlay_offsets = [0]
    head_ranks: list[int] = []
    head_indices: list[int] = []
    weights: list[float] = []
    for rows in index.overlay:
        for head_rank, head_index, weight in rows:
            head_ranks.append(head_rank)
            head_indices.append(head_index)
            weights.append(weight)
        overlay_offsets.append(len(head_ranks))
    writer.add("overlay.offsets", "q", overlay_offsets)
    writer.add("overlay.head_rank", "q", head_ranks)
    writer.add("overlay.head_index", "q", head_indices)
    writer.add("overlay.weight", "d", weights)

    tree_offsets = [0]
    order: list[int] = []
    dist: list[float] = []
    size: list[int] = []
    # Per preorder position, the dense edge id of the tree edge into the
    # node at that position (-1 at each root): enough to rebuild both
    # ``edge_pos`` and the inverted tree index on load.
    edge_ids: list[int] = []
    for tree in index.trees:
        base = len(order)
        order.extend(tree.order)
        dist.extend(tree.dist)
        size.extend(tree.size)
        edge_ids.extend([-1] * len(tree.order))
        for edge_id, pos in tree.edge_pos.items():
            edge_ids[base + pos] = edge_id
        tree_offsets.append(len(order))
    writer.add("trees.offsets", "q", tree_offsets)
    writer.add("trees.order", "q", order)
    writer.add("trees.dist", "d", dist)
    writer.add("trees.size", "q", size)
    writer.add("trees.edge_ids", "q", edge_ids)


def save_snapshot(oracle: FrozenDISO, target: str | Path) -> Path:
    """Write ``oracle`` (a frozen engine) as a binary snapshot file.

    Accepts :class:`FrozenDISO` and :class:`FrozenADISO` instances —
    i.e. anything ``freeze()`` returns, covering all four oracle
    families (DISO, ADISO, DISO-S with its fallback graph, ADISO-P).

    Raises
    ------
    FormatError
        If ``oracle`` is not a frozen engine (dict oracles must be
        frozen first; their indexes have no flat-buffer form).
    """
    if not isinstance(oracle, FrozenDISO):
        raise FormatError(
            f"snapshots require a frozen engine (freeze() result), "
            f"got {type(oracle).__name__}"
        )
    writer = SectionWriter()
    _add_csr(writer, "graph", oracle.frozen)
    _add_index(writer, oracle.index)

    meta = {
        "name": oracle.name,
        "exact": bool(oracle.exact),
        "preprocess_seconds": oracle.preprocess_seconds,
        "freeze_seconds": oracle.freeze_seconds,
        "num_nodes": oracle.frozen.number_of_nodes(),
        "num_edges": oracle.frozen.number_of_edges(),
        "num_transit": oracle.index.num_transit(),
    }
    if oracle._fallback is not None:
        _add_csr(writer, "fallback", oracle._fallback)
        meta["has_fallback"] = True
    if isinstance(oracle, FrozenADISO):
        engine = "FrozenADISO"
        table = oracle.landmarks
        n = oracle.frozen.number_of_nodes()
        flat_out: list[float] = []
        flat_in: list[float] = []
        for row in table._outbound:
            flat_out.extend(row)
        for row in table._inbound:
            flat_in.extend(row)
        writer.add("landmarks.nodes", "q", table.landmarks)
        writer.add("landmarks.outbound", "d", flat_out)
        writer.add("landmarks.inbound", "d", flat_in)
        meta["num_landmarks"] = len(table)
        meta["landmark_entries"] = oracle._landmark_entries
        assert len(flat_out) == len(table) * n
    else:
        engine = "FrozenDISO"

    blob = pack_container(writer, engine=engine, meta=meta)
    path = Path(target)
    path.write_bytes(blob)
    return path


def _read_header(
    raw: bytes | mmap.mmap,
    path: Path,
    magic: bytes = SNAPSHOT_MAGIC,
    version: int = SNAPSHOT_VERSION,
) -> tuple[dict, int]:
    """Parse and validate the container prefix; return (header, payload_start)."""
    if len(raw) < len(magic) + 4:
        raise FormatError(f"{path}: truncated snapshot (no header)")
    if raw[: len(magic)] != magic:
        raise FormatError(
            f"{path}: not a {magic.decode('ascii', 'replace')} container "
            f"(bad magic)"
        )
    (header_len,) = struct.unpack_from("<I", raw, len(magic))
    prefix_len = len(magic) + 4 + header_len
    if len(raw) < prefix_len:
        raise FormatError(f"{path}: truncated snapshot header")
    try:
        header = json.loads(
            bytes(raw[len(magic) + 4 : prefix_len]).decode("utf-8")
        )
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FormatError(f"{path}: corrupt snapshot header: {exc}") from exc
    found = header.get("format_version")
    if found != version:
        raise FormatError(
            f"{path}: unsupported snapshot version {found!r} "
            f"(expected {version})"
        )
    if header.get("endianness") != sys.byteorder:
        raise FormatError(
            f"{path}: snapshot endianness {header.get('endianness')!r} "
            f"does not match this machine ({sys.byteorder})"
        )
    return header, _align8(prefix_len)


class SnapshotReader:
    """A mapped snapshot file and zero-copy views into its sections.

    Holds the open file descriptor and ``mmap`` for as long as any
    restored structure references the mapped pages; the loaded oracle
    keeps a reference to the reader for exactly that reason.
    """

    def __init__(
        self,
        path: str | Path,
        verify: bool = True,
        magic: bytes = SNAPSHOT_MAGIC,
        version: int = SNAPSHOT_VERSION,
    ) -> None:
        self.path = Path(path)
        self._handle = open(self.path, "rb")
        try:
            self._mmap = mmap.mmap(
                self._handle.fileno(), 0, access=mmap.ACCESS_READ
            )
        except ValueError as exc:
            self._handle.close()
            raise FormatError(f"{self.path}: empty snapshot file") from exc
        try:
            self.header, self._payload_start = _read_header(
                self._mmap, self.path, magic=magic, version=version
            )
            payload_size = self.header.get("payload_size", 0)
            if self._payload_start + payload_size > len(self._mmap):
                raise FormatError(f"{self.path}: truncated snapshot payload")
            self._payload = memoryview(self._mmap)[
                self._payload_start : self._payload_start + payload_size
            ]
            if verify:
                crc = zlib.crc32(self._payload)
                if crc != self.header.get("payload_crc32"):
                    raise FormatError(
                        f"{self.path}: payload checksum mismatch "
                        f"(file corrupt?)"
                    )
            self._sections = {
                entry["name"]: entry for entry in self.header["sections"]
            }
        except Exception:
            self.close()
            raise

    @property
    def meta(self) -> dict:
        return self.header.get("meta", {})

    def section(self, name: str):
        """Zero-copy typed view of one section (int64 or float64)."""
        entry = self._sections.get(name)
        if entry is None:
            raise FormatError(f"{self.path}: missing section {name!r}")
        start = entry["offset"]
        end = start + entry["count"] * _ITEM_SIZE
        if end > len(self._payload):
            raise FormatError(
                f"{self.path}: section {name!r} overruns the payload"
            )
        return self._payload[start:end].cast(entry["typecode"])

    def has_section(self, name: str) -> bool:
        return name in self._sections

    def close(self) -> None:
        """Release views and the mapping (restored oracles die with it)."""
        payload = getattr(self, "_payload", None)
        if payload is not None:
            payload.release()
            self._payload = None
        mapping = getattr(self, "_mmap", None)
        if mapping is not None:
            try:
                self._mmap.close()
            except BufferError:
                # Live section views still reference the pages; the map
                # stays valid until they are garbage-collected.
                pass
            self._mmap = None
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def _load_csr(reader: SnapshotReader, prefix: str) -> FrozenGraph:
    return FrozenGraph(
        node_ids=list(reader.section(f"{prefix}.node_ids")),
        offsets=reader.section(f"{prefix}.offsets"),
        heads=reader.section(f"{prefix}.heads"),
        weights=reader.section(f"{prefix}.weights"),
    )


def _load_index(reader: SnapshotReader, frozen: FrozenGraph) -> FrozenIndex:
    transit_nodes = list(reader.section("index.transit_nodes"))
    n = frozen.number_of_nodes()
    rank_of = [-1] * n
    transit_flags = bytearray(n)
    for rank, node_index in enumerate(transit_nodes):
        rank_of[node_index] = rank
        transit_flags[node_index] = 1

    overlay_offsets = reader.section("overlay.offsets")
    head_rank = reader.section("overlay.head_rank")
    head_index = reader.section("overlay.head_index")
    weight = reader.section("overlay.weight")
    overlay = [
        tuple(
            (head_rank[pos], head_index[pos], weight[pos])
            for pos in range(overlay_offsets[rank], overlay_offsets[rank + 1])
        )
        for rank in range(len(transit_nodes))
    ]

    tree_offsets = reader.section("trees.offsets")
    tree_order = reader.section("trees.order")
    tree_dist = reader.section("trees.dist")
    tree_size = reader.section("trees.size")
    tree_edge_ids = reader.section("trees.edge_ids")
    trees: list[FrozenTree] = []
    inverted_members: dict[int, list[int]] = {}
    for rank in range(len(transit_nodes)):
        start, end = tree_offsets[rank], tree_offsets[rank + 1]
        order = tree_order[start:end]
        edge_pos: dict[int, int] = {}
        for pos in range(1, end - start):
            edge_id = tree_edge_ids[start + pos]
            if edge_id >= 0:
                edge_pos[edge_id] = pos
                inverted_members.setdefault(edge_id, []).append(rank)
        trees.append(
            FrozenTree(
                root=order[0],
                order=order,
                dist=tree_dist[start:end],
                size=tree_size[start:end],
                edge_pos=edge_pos,
            )
        )
    inverted = {
        edge_id: tuple(ranks) for edge_id, ranks in inverted_members.items()
    }
    return FrozenIndex(
        frozen=frozen,
        transit_nodes=transit_nodes,
        rank_of=rank_of,
        transit_flags=transit_flags,
        overlay=overlay,
        inverted=inverted,
        trees=trees,
    )


def load_snapshot(
    source: str | Path, verify: bool = True
) -> FrozenDISO | FrozenADISO:
    """Map a snapshot file and restore the frozen engine it contains.

    The heavyweight storage (CSR buffers, preorder trees, overlay rows,
    landmark tables) stays backed by the mapping — shared read-only
    across every process that loads the same file.  Only the derived
    Python-object views (adjacency tuples, rank dicts, the inverted
    index) are rebuilt, in one linear pass, never per query.

    Parameters
    ----------
    source:
        Path of a file written by :func:`save_snapshot`.
    verify:
        Check the payload CRC-32 before restoring (default).  Skipping
        saves one pass over the file for trusted/local restarts.

    Raises
    ------
    FormatError
        On a missing/garbled header, version or endianness mismatch,
        truncation, or checksum failure.
    """
    reader = SnapshotReader(source, verify=verify)
    meta = reader.meta
    frozen = _load_csr(reader, "graph")
    index = _load_index(reader, frozen)
    fallback = (
        _load_csr(reader, "fallback") if reader.has_section("fallback.node_ids")
        else None
    )
    parts = dict(
        graph=frozen.to_digraph(),
        frozen=frozen,
        index=index,
        fallback=fallback,
        name=meta.get("name", "DISO-F"),
        exact=bool(meta.get("exact", True)),
        preprocess_seconds=meta.get("preprocess_seconds", 0.0),
        freeze_seconds=meta.get("freeze_seconds", 0.0),
    )
    if reader.header.get("engine") == "FrozenADISO":
        nodes = reader.section("landmarks.nodes")
        flat_out = reader.section("landmarks.outbound")
        flat_in = reader.section("landmarks.inbound")
        n = frozen.number_of_nodes()
        count = len(nodes)
        landmarks = FrozenLandmarkTable._restore(
            landmarks=list(nodes),
            outbound=[flat_out[i * n : (i + 1) * n] for i in range(count)],
            inbound=[flat_in[i * n : (i + 1) * n] for i in range(count)],
        )
        oracle = FrozenADISO._restore_adiso(
            landmarks=landmarks,
            landmark_entries=int(meta.get("landmark_entries", 0)),
            **parts,
        )
    elif reader.header.get("engine") == "FrozenDISO":
        oracle = FrozenDISO._restore(**parts)
    else:
        engine = reader.header.get("engine")
        reader.close()
        raise FormatError(f"{source}: unknown snapshot engine {engine!r}")
    # The restored structures reference the mapped pages; keep the
    # mapping alive exactly as long as the oracle.
    oracle._snapshot_reader = reader
    return oracle


def snapshot_info(source: str | Path) -> dict:
    """Read a snapshot's header without restoring the engine.

    Returns the parsed header (format version, engine, metadata and the
    section table) plus the file size — what the CLI prints.
    """
    path = Path(source)
    raw = path.read_bytes()
    header, payload_start = _read_header(raw, path)
    header["file_bytes"] = len(raw)
    header["payload_start"] = payload_start
    return header
