"""Smoke tests for the supplemental sensitivity experiments."""

from __future__ import annotations

from repro.experiments.sensitivity import (
    format_affected_nodes_sweep,
    format_alpha_sweep,
    format_theta_sweep,
    format_throughput_scaling,
    run_affected_nodes_sweep,
    run_alpha_sweep,
    run_theta_sweep,
    run_throughput_scaling,
)

TINY = dict(scale=0.25, seed=7)


class TestThetaSweep:
    def test_runs_and_formats(self):
        data = run_theta_sweep(
            dataset="DBLP", thetas=(0.0, 16.0), query_count=4, **TINY
        )
        assert len(data["cover_sizes"]) == 2
        assert "theta" in format_theta_sweep(data)

    def test_larger_theta_smaller_cover(self):
        data = run_theta_sweep(
            dataset="DBLP", thetas=(0.0, 64.0), query_count=3, **TINY
        )
        assert data["cover_sizes"][1] <= data["cover_sizes"][0]


class TestAlphaSweep:
    def test_runs_and_formats(self):
        data = run_alpha_sweep(
            dataset="NY",
            alphas=(0.1, 0.5),
            num_landmarks=3,
            query_count=4,
            **TINY,
        )
        assert len(data["query_ms"]) == 2
        assert "alpha" in format_alpha_sweep(data)


class TestAffectedNodesSweep:
    def test_runs_and_formats(self):
        data = run_affected_nodes_sweep(
            dataset="NY", p_values=(0.0, 0.01), query_count=4, **TINY
        )
        assert len(data["affected_avg"]) == 2
        assert data["transit_size"] > 0
        assert "affected" in format_affected_nodes_sweep(data)

    def test_more_failures_more_affected(self):
        data = run_affected_nodes_sweep(
            dataset="NY", p_values=(0.0, 0.05), query_count=5, **TINY
        )
        assert data["affected_avg"][0] <= data["affected_avg"][1]


class TestThroughputScaling:
    def test_runs_and_formats(self):
        data = run_throughput_scaling(
            dataset="NY",
            thread_counts=(1, 2),
            query_count=8,
            **TINY,
        )
        assert len(data["queries_per_second"]) == 2
        assert "threads" in format_throughput_scaling(data)
