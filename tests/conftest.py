"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    grid_network,
    path_network,
    ring_network,
    road_network,
    scale_free_network,
)


@pytest.fixture
def triangle() -> DiGraph:
    """Three nodes, one cheap two-hop route and one expensive direct edge."""
    return DiGraph([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0)])


@pytest.fixture
def diamond() -> DiGraph:
    """Classic diamond: two disjoint routes from 0 to 3."""
    return DiGraph(
        [
            (0, 1, 1.0),
            (1, 3, 1.0),
            (0, 2, 2.0),
            (2, 3, 2.0),
        ]
    )


@pytest.fixture
def small_grid() -> DiGraph:
    """5x5 bidirectional unit grid — analytic Manhattan distances."""
    return grid_network(5, 5)


@pytest.fixture
def small_road() -> DiGraph:
    """A ~140-node road-like network for oracle tests."""
    return road_network(12, 12, seed=3)


@pytest.fixture
def small_social() -> DiGraph:
    """A ~200-node scale-free network for oracle tests."""
    return scale_free_network(200, attach=3, seed=5)


@pytest.fixture
def line() -> DiGraph:
    """Bidirectional path of 8 nodes."""
    return path_network(8)


@pytest.fixture
def ring() -> DiGraph:
    """Bidirectional ring of 10 nodes."""
    return ring_network(10)
