"""Tests for FailureStateView — shared failure state, many queries."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.oracle.batch import FailureStateView
from repro.oracle.diso import DISO
from repro.pathing.dijkstra import shortest_distance
from util import random_failures_from, random_graph


class TestFailureStateView:
    def test_matches_per_query_diso(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        failed = {(0, 1), (40, 41), (90, 91)}
        view = FailureStateView(oracle, failed)
        for s, t in [(0, 143), (12, 95), (143, 0), (5, 5)]:
            assert view.query(s, t) == pytest.approx(
                oracle.query(s, t, failed)
            )

    def test_empty_failure_state(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        view = FailureStateView(oracle)
        assert view.affected == frozenset()
        assert view.query(0, 100) == pytest.approx(oracle.query(0, 100))

    def test_memo_grows_at_most_once_per_affected_node(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        failed = random_failures_from(small_road, 4, 15)
        view = FailureStateView(oracle, failed)
        pairs = [(0, 143), (143, 0), (12, 95), (95, 12), (3, 140)]
        view.query_many(pairs)
        assert view.memoized_nodes <= len(view.affected)

    def test_views_are_independent(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        view_a = FailureStateView(oracle, {(0, 1)})
        view_b = FailureStateView(oracle, {(100, 101)})
        a = view_a.query(0, 143)
        b = view_b.query(0, 143)
        assert a == pytest.approx(oracle.query(0, 143, {(0, 1)}))
        assert b == pytest.approx(oracle.query(0, 143, {(100, 101)}))

    def test_oracle_index_untouched(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        before = {
            (t, h): w for t, h, w in oracle.distance_graph.graph.edges()
        }
        view = FailureStateView(
            oracle, random_failures_from(small_road, 9, 20)
        )
        view.query_many([(0, 143), (50, 100)])
        after = {
            (t, h): w for t, h, w in oracle.distance_graph.graph.edges()
        }
        assert before == after

    def test_query_many_order(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        view = FailureStateView(oracle, {(0, 1)})
        pairs = [(0, 10), (10, 0), (0, 143)]
        answers = view.query_many(pairs)
        assert answers == [view.query(s, t) for s, t in pairs]

    def test_stats_report_shared_affected(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        failed = random_failures_from(small_road, 2, 10)
        view = FailureStateView(oracle, failed)
        result = view.query_detailed(0, 143)
        assert result.stats.affected_count == len(view.affected)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    fail_seed=st.integers(min_value=0, max_value=10_000),
    s=st.integers(min_value=0, max_value=29),
    t=st.integers(min_value=0, max_value=29),
)
def test_view_exact_random(seed, fail_seed, s, t):
    graph = random_graph(seed)
    oracle = DISO(graph, tau=2, theta=4.0)
    failed = random_failures_from(graph, fail_seed, 8)
    view = FailureStateView(oracle, failed)
    expected = shortest_distance(graph, s, t, failed)
    assert view.query(s, t) == pytest.approx(expected)
    # Second pass through the memoized path stays exact.
    assert view.query(s, t) == pytest.approx(expected)
