"""Bench: Table 3 — path cover computation methods (ISC vs PRU vs HPC).

Reproduces the paper's comparison: ISC should produce the sparsest
distance graph and the fastest DISO queries; PRU explodes on dense
social graphs.  The full table (one road + one social dataset) is
written to ``results/table3.txt``.
"""

from __future__ import annotations

from repro.cover.hpc import hpc_path_cover
from repro.cover.isc import isc_path_cover
from repro.cover.pruning import pru_path_cover
from repro.experiments.table3 import format_table3, run_table3

from bench_util import SCALE, SEED, dataset, write_result


def test_isc_cover_road(benchmark):
    graph = dataset("NY")
    result = benchmark(isc_path_cover, graph, 4, 1.0)
    assert result.cover


def test_hpc_cover_road(benchmark):
    graph = dataset("NY")
    result = benchmark(hpc_path_cover, graph, 4)
    assert result.cover


def test_pru_cover_road(benchmark):
    graph = dataset("NY")
    result = benchmark.pedantic(
        lambda: pru_path_cover(graph, k=16, budget_per_node=4000),
        rounds=1,
        iterations=1,
    )
    assert result.cover


def test_isc_cover_social(benchmark):
    graph = dataset("DBLP")
    result = benchmark(isc_path_cover, graph, 3, 16.0)
    assert result.cover


def test_table3_full(benchmark):
    rows = benchmark.pedantic(
        lambda: run_table3(
            datasets=("NY", "DBLP"),
            scale=SCALE,
            query_count=15,
            seed=SEED,
            pru_budget=4000,
        ),
        rounds=1,
        iterations=1,
    )
    write_result("table3", format_table3(rows))
    # The paper's headline shape: ISC's overlay is the sparsest.
    by_method = {
        (row["dataset"], row["method"]): row
        for row in rows
        if not row.get("failed")
    }
    for name in ("NY", "DBLP"):
        isc_edges = by_method[(name, "ISC")]["overlay_edges"]
        hpc_edges = by_method[(name, "HPC")]["overlay_edges"]
        assert isc_edges <= hpc_edges
