"""Tests for the boosted approximate oracles: DISO-S and ADISO-P.

Approximate oracles must never *under*estimate (their answers are
distances of real paths avoiding the failures), must be exact in the
failure-free case whenever their structures permit, and must respect
their documented error controls (beta for DISO-S).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.oracle.adiso_p import ADISOPartial
from repro.oracle.base import INFINITY
from repro.oracle.diso_s import DISOSparse
from repro.pathing.dijkstra import shortest_distance
from util import random_failures_from, random_graph


class TestDISOSparse:
    def build(self, graph, beta=1.5):
        return DISOSparse(graph, beta=beta, tau=2, theta=16.0)

    def test_marked_approximate(self, small_social):
        assert not self.build(small_social).exact

    def test_never_underestimates(self, small_social):
        oracle = self.build(small_social)
        failed = random_failures_from(small_social, 3, 10)
        for s, t in [(0, 150), (10, 190), (199, 0)]:
            estimate = oracle.query(s, t, failed)
            true = shortest_distance(small_social, s, t, failed)
            assert estimate >= true - 1e-9

    def test_failure_free_within_beta(self, small_social):
        beta = 1.5
        oracle = self.build(small_social, beta=beta)
        for s, t in [(0, 150), (10, 190), (42, 7)]:
            estimate = oracle.query(s, t)
            true = shortest_distance(small_social, s, t)
            assert true - 1e-9 <= estimate <= beta * beta * true + 1e-9

    def test_fallback_on_unreachable_in_sparse_world(self, small_social):
        oracle = self.build(small_social)
        # A query whose failures cut the sparsified graph may fall back;
        # either way the answer must match the original graph's truth or
        # overestimate it.
        failed = random_failures_from(small_social, 9, 40)
        result = oracle.query_detailed(5, 180, failed)
        true = shortest_distance(small_social, 5, 180, failed)
        assert result.distance >= true - 1e-9

    def test_sparsified_overlay_not_larger(self, small_social):
        oracle = self.build(small_social)
        assert (
            oracle.distance_graph.num_edges
            <= oracle.overlay_sparsification.graph.number_of_edges()
            + len(oracle.overlay_sparsification.removed)
        )

    def test_invalid_beta_raises(self, small_social):
        with pytest.raises(ValueError):
            DISOSparse(small_social, beta=0.9)


class TestADISOPartial:
    def build(self, graph):
        return ADISOPartial(graph, tau=3, theta=1.0, tau_h=2, num_landmarks=4)

    def test_marked_approximate(self, small_road):
        assert not self.build(small_road).exact

    def test_failure_free_is_exact(self, small_road):
        oracle = self.build(small_road)
        for s, t in [(0, 143), (12, 95), (143, 7)]:
            assert oracle.query(s, t) == pytest.approx(
                shortest_distance(small_road, s, t)
            )

    def test_never_underestimates(self, small_road):
        oracle = self.build(small_road)
        failed = random_failures_from(small_road, 5, 8)
        for s, t in [(0, 143), (12, 95), (100, 3)]:
            estimate = oracle.query(s, t, failed)
            true = shortest_distance(small_road, s, t, failed)
            assert estimate >= true - 1e-9

    def test_same_node(self, small_road):
        oracle = self.build(small_road)
        assert oracle.query(4, 4, failed={(4, 5)}) == 0.0

    def test_h_overlay_smaller_than_d(self, small_road):
        oracle = self.build(small_road)
        assert oracle.h_overlay.num_nodes <= oracle.distance_graph.num_nodes

    def test_index_entries_include_h(self, small_road):
        entries = self.build(small_road).index_entries()
        assert "h_overlay_nodes" in entries
        assert "h_tree_nodes" in entries

    def test_exit_candidates_never_worse(self, small_road):
        """More candidate routes can only improve the estimate."""
        failed = random_failures_from(small_road, 5, 8)
        single = ADISOPartial(
            small_road, tau=3, tau_h=2, num_landmarks=4, exit_candidates=1
        )
        multi = ADISOPartial(
            small_road,
            transit=single.transit,
            tau_h=2,
            num_landmarks=4,
            exit_candidates=3,
        )
        for s, t in [(0, 143), (12, 95), (100, 3)]:
            assert multi.query(s, t, failed) <= (
                single.query(s, t, failed) + 1e-9
            )

    def test_avoid_affected_bias_stays_sound(self, small_road):
        """The selection bias never produces an underestimate."""
        oracle = ADISOPartial(
            small_road,
            tau=3,
            tau_h=2,
            num_landmarks=4,
            avoid_affected_bias=0.5,
        )
        failed = random_failures_from(small_road, 7, 10)
        for s, t in [(0, 143), (12, 95), (100, 3)]:
            estimate = oracle.query(s, t, failed)
            true = shortest_distance(small_road, s, t, failed)
            assert estimate >= true - 1e-9

    def test_bias_exact_without_failures(self, small_road):
        oracle = ADISOPartial(
            small_road,
            tau=3,
            tau_h=2,
            num_landmarks=4,
            avoid_affected_bias=1.0,
            exit_candidates=3,
        )
        for s, t in [(0, 143), (12, 95)]:
            assert oracle.query(s, t) == pytest.approx(
                shortest_distance(small_road, s, t)
            )

    def test_unreachable_target(self):
        from repro.graph.digraph import DiGraph

        g = DiGraph()
        # Two rings joined by a single directed bridge.
        for i in range(5):
            g.add_edge(i, (i + 1) % 5, 1.0)
            g.add_edge((i + 1) % 5, i, 1.0)
        for i in range(5, 10):
            j = 5 + (i - 4) % 5
            g.add_edge(i, j, 1.0)
            g.add_edge(j, i, 1.0)
        g.add_edge(2, 7, 1.0)
        oracle = ADISOPartial(g, tau=1, tau_h=1, num_landmarks=2)
        assert oracle.query(7, 2) == INFINITY
        # Failing the only bridge makes 7 unreachable from 0.
        assert oracle.query(0, 7, failed={(2, 7)}) == INFINITY


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    fail_seed=st.integers(min_value=0, max_value=10_000),
    s=st.integers(min_value=0, max_value=29),
    t=st.integers(min_value=0, max_value=29),
)
def test_diso_sparse_upper_bound_random(seed, fail_seed, s, t):
    """DISO-S never returns less than the true distance."""
    graph = random_graph(seed)
    oracle = DISOSparse(graph, beta=1.5, tau=2, theta=8.0)
    failed = random_failures_from(graph, fail_seed, 6)
    true = shortest_distance(graph, s, t, failed)
    assert oracle.query(s, t, failed) >= true - 1e-9


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    fail_seed=st.integers(min_value=0, max_value=10_000),
    s=st.integers(min_value=0, max_value=29),
    t=st.integers(min_value=0, max_value=29),
)
def test_adiso_p_upper_bound_random(seed, fail_seed, s, t):
    """ADISO-P never returns less than the true distance."""
    graph = random_graph(seed)
    oracle = ADISOPartial(
        graph, tau=2, theta=4.0, tau_h=1, num_landmarks=3, seed=seed
    )
    failed = random_failures_from(graph, fail_seed, 5)
    true = shortest_distance(graph, s, t, failed)
    assert oracle.query(s, t, failed) >= true - 1e-9


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    s=st.integers(min_value=0, max_value=29),
    t=st.integers(min_value=0, max_value=29),
)
def test_adiso_p_exact_without_failures_random(seed, s, t):
    graph = random_graph(seed)
    oracle = ADISOPartial(
        graph, tau=2, theta=4.0, tau_h=1, num_landmarks=3, seed=seed
    )
    assert oracle.query(s, t) == pytest.approx(
        shortest_distance(graph, s, t)
    )
