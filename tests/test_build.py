"""The parallel build plane must be invisible in the result.

``build_parallel`` fans per-landmark work over a process pool; its
whole contract is that parallelism changes *when* the work happens and
never *what* comes out.  The property under test is therefore bitwise:
the canonical snapshot of a parallel build equals the sequential
constructor's, for every family, across seeded graphs, at every jobs
setting — and across a kill and resume from the shard spool.

Set ``DSO_BUILD_START_METHOD=spawn`` (or ``fork``) to pin the worker
start method; ``build_parallel`` reads it directly, so the whole module
runs under either (CI exercises both).
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.build import (
    FAMILIES,
    build_parallel,
    canonical_snapshot_bytes,
    finalize_checkpoint,
)
from repro.build.checkpoint import BuildSpool
from repro.build.profiler import PHASES
from repro.exceptions import FormatError, PreprocessingError
from repro.graph.generators import road_network, scale_free_network
from repro.oracle.adiso import ADISO
from repro.oracle.adiso_p import ADISOPartial
from repro.oracle.diso import DISO
from repro.oracle.diso_s import DISOSparse

# One knob set shared by the sequential baselines and the build plane —
# parity is only meaningful when both sides resolve the same index.
TAU = 3
THETA = 1.0
NUM_LANDMARKS = 4
SEED = 0
BETA = 1.5
TAU_H = 3

GRAPHS = {
    "road-a": lambda: road_network(6, 6, seed=1),
    "road-b": lambda: road_network(5, 7, seed=2),
    "social": lambda: scale_free_network(60, attach=2, seed=3),
}


def sequential_oracle(family: str, graph):
    """The classic constructor with the module's shared knob set."""
    if family == "diso":
        return DISO(graph, tau=TAU, theta=THETA)
    if family == "adiso":
        return ADISO(
            graph, tau=TAU, theta=THETA,
            num_landmarks=NUM_LANDMARKS, seed=SEED,
        )
    if family == "diso-s":
        return DISOSparse(graph, beta=BETA, tau=TAU, theta=THETA)
    assert family == "adiso-p"
    return ADISOPartial(
        graph, tau=TAU, theta=THETA,
        num_landmarks=NUM_LANDMARKS, seed=SEED, tau_h=TAU_H,
    )


def parallel_build(graph, family: str, jobs: int, **kwargs):
    return build_parallel(
        graph,
        family=family,
        jobs=jobs,
        tau=TAU,
        theta=THETA,
        num_landmarks=NUM_LANDMARKS,
        seed=SEED,
        beta=BETA,
        tau_h=TAU_H,
        **kwargs,
    )


# ----------------------------------------------------------------------
# The tentpole property: bitwise snapshot parity, per family
# ----------------------------------------------------------------------
@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
@pytest.mark.parametrize("family", FAMILIES)
def test_jobs2_bitwise_parity(family, graph_name):
    graph = GRAPHS[graph_name]()
    expected = canonical_snapshot_bytes(
        sequential_oracle(family, graph).freeze()
    )
    result = parallel_build(graph, family, jobs=2)
    assert canonical_snapshot_bytes(result.oracle.freeze()) == expected
    assert result.report.built_units == result.report.total_units


@pytest.mark.parametrize("family", FAMILIES)
def test_jobs0_inline_parity(family):
    graph = GRAPHS["road-a"]()
    expected = canonical_snapshot_bytes(
        sequential_oracle(family, graph).freeze()
    )
    result = parallel_build(graph, family, jobs=0)
    assert canonical_snapshot_bytes(result.oracle.freeze()) == expected
    assert result.report.workers == []


# ----------------------------------------------------------------------
# Checkpoints: interrupt, resume, corruption, fingerprinting
# ----------------------------------------------------------------------
class _StopBuild(Exception):
    pass


def test_interrupted_build_resumes_from_spool(tmp_path):
    graph = GRAPHS["road-a"]()
    spool = tmp_path / "spool"
    seen = []

    def stop_after_three(kind, label):
        seen.append((kind, label))
        if len(seen) == 3:
            raise _StopBuild

    with pytest.raises(_StopBuild):
        parallel_build(
            graph, "diso", jobs=0,
            spool_dir=spool, on_shard=stop_after_three,
        )
    shard_files = list((spool / "shards").iterdir())
    assert len(shard_files) == 3

    resumed = finalize_checkpoint(spool, jobs=0)
    assert resumed.report.resumed_units == 3
    assert resumed.report.built_units == resumed.report.total_units - 3
    expected = canonical_snapshot_bytes(
        sequential_oracle("diso", graph).freeze()
    )
    assert canonical_snapshot_bytes(resumed.oracle.freeze()) == expected


def test_completed_spool_resumes_everything(tmp_path):
    graph = GRAPHS["road-a"]()
    spool = tmp_path / "spool"
    first = parallel_build(graph, "diso", jobs=0, spool_dir=spool)
    second = parallel_build(graph, "diso", jobs=0, spool_dir=spool)
    assert second.report.resumed_units == second.report.total_units
    assert second.report.built_units == 0
    assert canonical_snapshot_bytes(second.oracle.freeze()) == (
        canonical_snapshot_bytes(first.oracle.freeze())
    )


def test_corrupt_shard_is_rebuilt(tmp_path):
    graph = GRAPHS["road-a"]()
    spool = tmp_path / "spool"
    parallel_build(graph, "diso", jobs=0, spool_dir=spool)
    victim = sorted((spool / "shards").iterdir())[0]
    raw = victim.read_bytes()
    victim.write_bytes(raw[:-4] + b"\x00\x00\x00\x00")

    result = finalize_checkpoint(spool, jobs=0)
    assert result.report.corrupt_shards == 1
    assert result.report.built_units == 1
    expected = canonical_snapshot_bytes(
        sequential_oracle("diso", graph).freeze()
    )
    assert canonical_snapshot_bytes(result.oracle.freeze()) == expected


def test_spool_fingerprint_mismatch_raises(tmp_path):
    spool = tmp_path / "spool"
    parallel_build(GRAPHS["road-a"](), "diso", jobs=0, spool_dir=spool)
    with pytest.raises(FormatError, match="fingerprint"):
        parallel_build(GRAPHS["road-b"](), "diso", jobs=0, spool_dir=spool)


def test_finalize_needs_a_container(tmp_path):
    with pytest.raises(FormatError, match="no build checkpoint"):
        finalize_checkpoint(tmp_path / "nothing-here")


# ----------------------------------------------------------------------
# A real kill: the builder process dies mid-flight, a fresh process
# finishes the build from the spool with identical snapshot bytes.
# ----------------------------------------------------------------------
def _killed_build_child(spool_dir: str, kill_after: int) -> None:
    """Run in a child process; hard-exits after ``kill_after`` shards."""
    from repro.build import build_parallel
    from repro.graph.generators import road_network

    graph = road_network(6, 6, seed=1)
    spooled = 0

    def on_shard(kind, label):
        nonlocal spooled
        spooled += 1
        if spooled >= kill_after:
            os._exit(17)

    build_parallel(
        graph, family="diso", jobs=0,
        tau=TAU, theta=THETA, seed=SEED,
        spool_dir=spool_dir, on_shard=on_shard,
    )


def test_killed_build_process_resumes_bitwise(tmp_path):
    spool = tmp_path / "spool"
    method = os.environ.get("DSO_BUILD_START_METHOD") or None
    context = multiprocessing.get_context(method)
    child = context.Process(
        target=_killed_build_child, args=(str(spool), 3)
    )
    child.start()
    child.join(timeout=60)
    assert child.exitcode == 17

    result = finalize_checkpoint(spool, jobs=0)
    assert result.report.resumed_units == 3
    graph = GRAPHS["road-a"]()
    expected = canonical_snapshot_bytes(
        sequential_oracle("diso", graph).freeze()
    )
    assert canonical_snapshot_bytes(result.oracle.freeze()) == expected


# ----------------------------------------------------------------------
# Guard rails and the profiler
# ----------------------------------------------------------------------
def test_unknown_family_rejected():
    with pytest.raises(PreprocessingError, match="family"):
        build_parallel(GRAPHS["road-a"](), family="fddo", jobs=0)


def test_family_names_normalize():
    graph = GRAPHS["road-a"]()
    upper = parallel_build(graph, "DISO_S", jobs=0)
    lower = parallel_build(graph, "diso-s", jobs=0)
    assert canonical_snapshot_bytes(upper.oracle.freeze()) == (
        canonical_snapshot_bytes(lower.oracle.freeze())
    )


def test_spool_survives_via_build_spool_api(tmp_path):
    spool = BuildSpool(tmp_path / "spool")
    assert spool.prepare(b"payload") is False
    assert spool.prepare(b"payload") is True
    with pytest.raises(FormatError, match="fingerprint"):
        spool.prepare(b"different payload")


def test_profiler_report_schema():
    graph = GRAPHS["road-a"]()
    result = parallel_build(graph, "adiso", jobs=2)
    data = result.report.to_dict()
    assert data["family"] == "adiso"
    assert data["jobs"] == 2
    assert set(data["phase_seconds"]) == set(PHASES)
    assert data["wall_seconds"] > 0.0
    assert data["total_units"] == data["built_units"]
    assert data["shards"]["count"] == data["built_units"]
    assert data["shards"]["total_bytes"] > 0
    assert len(data["workers"]) >= 1
    for stats in data["workers"]:
        assert stats["pid"] > 0
    # Utilization fractions are per fan-out wall time, hence bounded.
    for fraction in data["worker_utilization"].values():
        assert 0.0 <= fraction <= 1.0
    # JSON round-trip is what --profile PATH writes.
    import json

    assert json.loads(result.report.to_json()) == json.loads(
        result.report.to_json()
    )
