"""Sharded build: per-shard oracles plus the border-distance overlay.

:func:`build_sharded` takes a :class:`~repro.sharding.plan.ShardPlan`
cut and produces, per shard, a frozen DISO over the shard's induced
subgraph, plus the *border matrix* — the failure-free distances
``d_k(b, b')`` between every pair of the shard's border nodes inside
that shard.  Border matrices are the type-2 edges of the cross-shard
overlay graph the stitcher walks (DESIGN.md §13).

Border rows are computed as LANDMARK-kind units of the parallel build
plane (:func:`repro.build.worker.compute_unit`): each border node is a
"landmark" of its shard subgraph and its unit is the same encoded
forward/backward Dijkstra pair the ADISO landmark build ships —
inline for ``jobs=0``, fanned over a
:class:`repro.build.coordinator._BuildPool` per shard otherwise.
Both paths produce byte-identical shard frames, so the matrices do not
depend on the worker count.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.build.shards import LANDMARK_KIND, decode_shard
from repro.build.worker import compute_unit
from repro.graph.digraph import DiGraph
from repro.oracle.diso import DISO
from repro.sharding.plan import ShardPlan, make_shard_plan

INFINITY = float("inf")


@dataclass
class ShardedBuild:
    """The finished sharded index, ready to snapshot or query.

    Attributes
    ----------
    plan:
        The cut this build realises.
    shard_graphs:
        Per shard, the induced subgraph the oracle was built on.
    shard_oracles:
        Per shard, a frozen DISO over that subgraph.
    border_matrices:
        Per shard, the row-major failure-free distance matrix over the
        shard's sorted border list (``matrix[i][j] = d_k(b_i, b_j)``
        inside the shard subgraph; ``inf`` when unreachable).
    build_seconds:
        Wall time of the whole sharded build.
    """

    plan: ShardPlan
    shard_graphs: list[DiGraph]
    shard_oracles: list
    border_matrices: list[list[list[float]]]
    build_seconds: float = 0.0
    #: Failure-free all-pairs border-to-border closure over the overlay
    #: (row-major over the globally sorted border list) — the frozen
    #: stitch plane's F=∅ fast path.  ``None`` on builds predating it;
    #: :func:`repro.sharding.snapshot.save_sharded_snapshot` computes a
    #: missing closure before persisting.
    border_closure: list[list[float]] | None = None


def _shard_transit(shard_graph: DiGraph, tau: int, theta: float):
    """Transit set for one shard's oracle, never empty.

    Tiny shards (a few nodes, or no edges at all) can yield an empty
    ISC cover, which DISO rejects; falling back to *all* shard nodes
    keeps the oracle exact — it just means no query on that shard
    benefits from the overlay shortcut.
    """
    transit = DISO.select_transit(shard_graph, tau=tau, theta=theta)
    if not transit:
        transit = set(shard_graph.nodes())
    return transit


def compute_border_matrix(
    shard_graph: DiGraph,
    borders: tuple[int, ...] | list[int],
    jobs: int = 0,
    start_method: str | None = None,
) -> list[list[float]]:
    """Failure-free border-to-border distances inside one shard.

    Each border node is dispatched as a LANDMARK-kind unit of the
    parallel build plane; the decoded outbound Dijkstra row, projected
    onto the border columns, is the matrix row.  ``jobs=0`` computes
    the identical units inline.
    """
    borders = list(borders)
    if not borders:
        return []
    node_ids = sorted(shard_graph.nodes())
    shard_bytes: dict[int, bytes] = {}
    if jobs > 0:
        _pooled_landmark_units(
            shard_graph, borders, node_ids, jobs, start_method, shard_bytes
        )
    else:
        transit = frozenset(borders)
        for border in borders:
            shard_bytes[border] = compute_unit(
                LANDMARK_KIND, border, shard_graph, shard_graph,
                transit, node_ids,
            )
    matrix: list[list[float]] = []
    for border in borders:
        decoded = decode_shard(shard_bytes[border])
        outbound, _ = decoded.to_rows(node_ids)
        matrix.append([outbound.get(other, INFINITY) for other in borders])
    return matrix


def _pooled_landmark_units(
    shard_graph, borders, node_ids, jobs, start_method, out: dict
) -> None:
    """Fan one shard's border units over a build-plane worker pool."""
    from repro.build.coordinator import _BuildPool, _resolve_start_method
    from repro.build.graph_store import build_container_bytes
    from repro.build.profiler import BuildReport

    container = build_container_bytes(
        shard_graph,
        family="diso",
        params={"role": "border-overlay"},
        transit=sorted(borders),
        landmarks=list(borders),
    )
    report = BuildReport(family="diso", jobs=jobs)
    with tempfile.TemporaryDirectory(prefix="dso-shard-build-") as tmp:
        container_path = Path(tmp) / "shard.dsobld"
        container_path.write_bytes(container)
        pool = _BuildPool(
            container_path,
            workers=jobs,
            start_method=_resolve_start_method(start_method),
            max_restarts=None,
            report=report,
        )
        try:
            units = [(LANDMARK_KIND, border) for border in borders]
            chunk = max(1, len(units) // (jobs * 4) or 1)
            pool.run(
                units, chunk,
                lambda kind, label, data: out.__setitem__(label, data),
            )
        finally:
            pool.shutdown()


def build_sharded(
    graph: DiGraph,
    parts: int,
    method: str = "metis",
    seed: int = 0,
    tau: int = 3,
    theta: float = 1.0,
    jobs: int = 0,
    start_method: str | None = None,
    plan: ShardPlan | None = None,
) -> ShardedBuild:
    """Cut ``graph`` and build the full sharded index.

    Returns a :class:`ShardedBuild` whose oracles answer shard-local
    queries exactly; stitched cross-shard answers come from
    :class:`repro.sharding.oracle.ShardedOracle` (or the sharded
    serving plane) on top of it.
    """
    started = time.perf_counter()
    if plan is None:
        plan = make_shard_plan(graph, parts, method=method, seed=seed)
    shard_graphs = [graph.subgraph(nodes) for nodes in plan.shard_nodes]
    shard_oracles = [
        DISO(
            shard_graph, tau=tau, theta=theta,
            transit=_shard_transit(shard_graph, tau, theta),
        ).freeze()
        for shard_graph in shard_graphs
    ]
    border_matrices = [
        compute_border_matrix(
            shard_graph, plan.shard_borders[shard],
            jobs=jobs, start_method=start_method,
        )
        for shard, shard_graph in enumerate(shard_graphs)
    ]
    # The F=∅ border closure is cheap relative to the per-shard oracle
    # builds (one Dijkstra per border over the small overlay graph) and
    # unlocks the frozen stitch plane's fast path, so it is always
    # precomputed here rather than lazily at load time.
    from repro.sharding.frozen_overlay import compute_border_closure
    from repro.sharding.oracle import BorderOverlay

    overlay = BorderOverlay(
        plan.assignment,
        plan.shard_borders,
        [(tail, head, weight) for tail, head, weight in plan.cross_edges],
        border_matrices,
    )
    return ShardedBuild(
        plan=plan,
        shard_graphs=shard_graphs,
        shard_oracles=shard_oracles,
        border_matrices=border_matrices,
        build_seconds=time.perf_counter() - started,
        border_closure=compute_border_closure(overlay),
    )
