"""Shortest path tree structure.

A shortest path tree (SPT) stores, for one root, the tree of shortest
paths discovered by a Dijkstra run: per-node distance and parent.  Both
the second-level index of DISO (bounded shortest path trees, Definition
4.2) and the landmark forests of the FDDO baseline are instances of this
structure, so it also maintains an explicit children map to support
subtree operations (invalidation during DynDijkstra-style repair).
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.graph.digraph import Edge

INFINITY = float("inf")


class ShortestPathTree:
    """A rooted tree of shortest paths with distances.

    Attributes
    ----------
    root:
        The root node (the source of the Dijkstra run).
    dist:
        ``{node: distance_from_root}`` for every node in the tree.
    parent:
        ``{node: parent_node}``; the root maps to ``None``.
    """

    __slots__ = ("root", "dist", "parent", "_children")

    def __init__(self, root: int) -> None:
        self.root = root
        self.dist: dict[int, float] = {root: 0.0}
        self.parent: dict[int, int | None] = {root: None}
        self._children: dict[int, set[int]] = {root: set()}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def attach(self, node: int, parent: int, distance: float) -> None:
        """Attach ``node`` under ``parent`` at ``distance`` from the root.

        If ``node`` is already in the tree it is re-parented (its own
        subtree stays attached below it; distances of descendants are the
        caller's responsibility, as in Dijkstra where descendants are
        settled later).

        Raises
        ------
        KeyError
            If ``parent`` is not in the tree.
        ValueError
            If attempting to re-parent the root.
        """
        if parent not in self.dist:
            raise KeyError(f"parent {parent!r} is not in the tree")
        if node == self.root:
            raise ValueError("cannot re-parent the root")
        old_parent = self.parent.get(node)
        if old_parent is not None:
            self._children[old_parent].discard(node)
        self.dist[node] = distance
        self.parent[node] = parent
        self._children[parent].add(node)
        self._children.setdefault(node, set())

    def detach_subtree(self, node: int) -> set[int]:
        """Remove ``node`` and its whole subtree; return the removed nodes.

        Raises
        ------
        ValueError
            If ``node`` is the root.
        KeyError
            If ``node`` is not in the tree.
        """
        if node == self.root:
            raise ValueError("cannot detach the root")
        parent = self.parent[node]
        if parent is not None:
            self._children[parent].discard(node)
        removed = set(self.subtree_nodes(node))
        for member in removed:
            del self.dist[member]
            del self.parent[member]
            del self._children[member]
        return removed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, node: int) -> bool:
        return node in self.dist

    def __len__(self) -> int:
        return len(self.dist)

    def nodes(self) -> Iterator[int]:
        """Iterate over all nodes in the tree."""
        return iter(self.dist)

    def children(self, node: int) -> frozenset[int]:
        """Return the children of ``node``."""
        return frozenset(self._children[node])

    def distance(self, node: int) -> float:
        """Return the distance from the root to ``node``, or ``inf``."""
        return self.dist.get(node, INFINITY)

    def tree_edges(self) -> Iterator[Edge]:
        """Iterate over the tree edges as ``(parent, child)`` pairs."""
        for node, parent in self.parent.items():
            if parent is not None:
                yield parent, node

    def path_to(self, node: int) -> list[Edge] | None:
        """Return the root-to-``node`` path as a list of edges, or None.

        The path is ``[(root, x1), (x1, x2), ..., (xk, node)]``.
        """
        if node not in self.dist:
            return None
        reversed_edges: list[Edge] = []
        current = node
        while True:
            parent = self.parent[current]
            if parent is None:
                break
            reversed_edges.append((parent, current))
            current = parent
        reversed_edges.reverse()
        return reversed_edges

    def path_nodes_to(self, node: int) -> list[int] | None:
        """Return the root-to-``node`` path as a node list, or None."""
        if node not in self.dist:
            return None
        nodes = [node]
        current = node
        while True:
            parent = self.parent[current]
            if parent is None:
                break
            nodes.append(parent)
            current = parent
        nodes.reverse()
        return nodes

    def subtree_nodes(self, node: int) -> Iterator[int]:
        """Iterate over ``node`` and all its descendants (preorder).

        Raises
        ------
        KeyError
            If ``node`` is not in the tree.
        """
        if node not in self.dist:
            raise KeyError(f"{node!r} is not in the tree")
        stack = [node]
        while stack:
            current = stack.pop()
            yield current
            stack.extend(self._children[current])

    def depth(self, node: int) -> int:
        """Return the number of tree edges from the root to ``node``."""
        count = 0
        current = node
        while True:
            parent = self.parent[current]
            if parent is None:
                return count
            count += 1
            current = parent

    def copy(self) -> "ShortestPathTree":
        """Return an independent copy of this tree."""
        clone = ShortestPathTree(self.root)
        clone.dist = dict(self.dist)
        clone.parent = dict(self.parent)
        clone._children = {node: set(kids) for node, kids in self._children.items()}
        return clone

    def check_invariants(self) -> None:
        """Validate internal consistency; raise AssertionError on breakage.

        Used by tests and by the maintenance code in debug mode: every
        non-root node has a parent in the tree, children maps mirror
        parent pointers, and distances are non-decreasing along tree
        edges.
        """
        assert self.parent[self.root] is None
        for node, parent in self.parent.items():
            if parent is None:
                assert node == self.root
                continue
            assert parent in self.dist, f"dangling parent of {node}"
            assert node in self._children[parent], f"children map misses {node}"
            assert self.dist[node] >= self.dist[parent] - 1e-12, (
                f"distance decreases along tree edge ({parent}, {node})"
            )
        for node, kids in self._children.items():
            for kid in kids:
                assert self.parent.get(kid) == node

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(root={self.root}, nodes={len(self.dist)})"
        )
