"""Bench: Table 6 — index sizes (plus preprocessing time measurements).

Index size is a static quantity; what this bench times is index
*construction* per method, the other preprocessing column of the paper.
The size table itself is persisted to ``results/table6.txt``.
"""

from __future__ import annotations

from repro.baselines.astar_oracle import AStarOracle
from repro.baselines.fddo import FDDOOracle
from repro.experiments.table6 import format_table6, run_table6
from repro.oracle.adiso import ADISO
from repro.oracle.diso import DISO
from repro.oracle.sizing import index_size_bytes
from repro.workload.datasets import DATASETS

from bench_util import SCALE, SEED, dataset, write_result


def test_build_diso_index(benchmark):
    graph = dataset("NY")
    spec = DATASETS["NY"]
    oracle = benchmark.pedantic(
        lambda: DISO(graph, tau=spec.tau_diso, theta=spec.theta),
        rounds=1,
        iterations=1,
    )
    assert index_size_bytes(oracle) > 0


def test_build_adiso_index(benchmark):
    graph = dataset("NY")
    spec = DATASETS["NY"]
    oracle = benchmark.pedantic(
        lambda: ADISO(
            graph, tau=spec.tau_adiso, theta=spec.theta, seed=SEED
        ),
        rounds=1,
        iterations=1,
    )
    assert index_size_bytes(oracle) > 0


def test_build_fddo_index(benchmark):
    graph = dataset("NY")
    oracle = benchmark.pedantic(
        lambda: FDDOOracle(graph, num_landmarks=20, seed=SEED),
        rounds=1,
        iterations=1,
    )
    assert index_size_bytes(oracle) > 0


def test_build_astar_index(benchmark):
    graph = dataset("NY")
    oracle = benchmark.pedantic(
        lambda: AStarOracle(graph, seed=SEED), rounds=1, iterations=1
    )
    assert index_size_bytes(oracle) > 0


def test_table6_full(benchmark):
    rows = benchmark.pedantic(
        lambda: run_table6(
            datasets=("NY", "CAL", "DBLP", "POKE"),
            scale=SCALE,
            seed=SEED,
            # The paper's FDDO uses 50 landmarks; matching it keeps the
            # Table 6 ordering (DISO < ADISO < FDDO) on the dense POKE
            # stand-in, whose DISO trees are comparatively heavy.
            fddo_landmarks=50,
        ),
        rounds=1,
        iterations=1,
    )
    write_result("table6", format_table6(rows))
    sizes = {
        (row["dataset"], row["method"]): row["size_mb"] for row in rows
    }
    for name in ("NY", "CAL", "DBLP", "POKE"):
        # Paper's shape: DISO smallest, FDDO largest.
        assert sizes[(name, "DISO")] < sizes[(name, "ADISO")]
        assert sizes[(name, "ADISO")] < sizes[(name, "FDDO")]
