"""Multi-level hierarchy: shrinking the overlay search with shortcuts.

Builds the n-level distance-graph hierarchy (`HierarchicalDISO`) on a
larger road network and shows what each ingredient buys:

* the level sizes (each level is a distance graph of the one below);
* how failures are localised level by level;
* the overlay search-space reduction once landmark goal direction lets
  the shortcuts actually skip territory.

Run with::

    python examples/hierarchy_demo.py
"""

from __future__ import annotations

from repro import (
    DISO,
    DijkstraOracle,
    HierarchicalDISO,
    LandmarkTable,
    road_network,
    sls_landmarks,
)
from repro.workload.queries import generate_queries


def main() -> None:
    graph = road_network(45, 40, seed=5)
    print(f"road network: {graph.number_of_nodes()} nodes, "
          f"{graph.number_of_edges()} edges")

    flat = DISO(graph, tau=4, theta=1.0)
    landmarks = LandmarkTable(graph, sls_landmarks(graph, 8, seed=1))
    hierarchy = HierarchicalDISO(
        graph,
        transit=flat.transit,
        extra_level_taus=(3, 2),
        landmark_table=landmarks,
    )
    sizes = [hierarchy.distance_graph.num_nodes] + [
        level.overlay.num_nodes for level in hierarchy.levels
    ]
    print("hierarchy levels (node counts): "
          + " -> ".join(str(n) for n in sizes))

    # How failures are localised across the levels.
    queries = generate_queries(graph, 10, f_gen=5, p=0.001, seed=3)
    sample = queries[0]
    from repro.oracle.base import QueryStats

    per_level = hierarchy._affected_by_level(
        frozenset(sample.failed), QueryStats()
    )
    print(f"\n{len(sample.failed)} failures affect, per level: "
          + " -> ".join(str(len(level)) for level in per_level))

    # Search-space comparison on the same answers.
    reference = DijkstraOracle(graph)
    flat_settled = hier_settled = 0
    for q in queries:
        flat_result = flat.query_detailed(q.source, q.target, q.failed)
        hier_result = hierarchy.query_detailed(q.source, q.target, q.failed)
        truth = reference.query(q.source, q.target, q.failed)
        assert abs(flat_result.distance - truth) < 1e-9
        assert abs(hier_result.distance - truth) < 1e-9
        flat_settled += flat_result.stats.overlay_settled
        hier_settled += hier_result.stats.overlay_settled
    print(f"\noverlay nodes settled over {len(queries)} queries:")
    print(f"  flat DISO            : {flat_settled}")
    print(f"  hierarchy + landmarks: {hier_settled} "
          f"({flat_settled / max(1, hier_settled):.1f}x fewer)")
    print("\nall answers verified against Dijkstra ground truth")


if __name__ == "__main__":
    main()
