"""Shard plans: a partition cut prepared for per-shard oracle builds.

A :class:`ShardPlan` is the deterministic, fully sorted description of
one K-way cut of a graph: which shard owns each node, the per-shard
node lists, the border nodes (globally and per shard), and the
cross-shard edges.  It is the single source of truth both for the
sharded build (:mod:`repro.sharding.build`) and for the stitching
query plane (:mod:`repro.sharding.oracle`), and every sequence it
exposes is sorted — the dsolint DSO101/102 invariant that set
iteration order must never escape into serialized bytes is satisfied
by construction, not by every consumer remembering to sort.

The paper's TNR structure is already border-node based ("a node having
a neighbor included in a different partition"), so the cut's border
set doubles as the transit set of the cross-shard overlay.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cover.partitioning import (
    border_nodes,
    edge_cut,
    metis_like_partition,
    spectral_partition,
    uniform_partition,
)
from repro.exceptions import PartitionError
from repro.graph.digraph import DiGraph

#: Recognised partitioner names for :func:`make_shard_plan`.
PARTITION_METHODS = ("metis", "spectral", "uniform")


@dataclass(frozen=True)
class ShardPlan:
    """One K-way cut of a graph, with every sequence sorted.

    Attributes
    ----------
    parts, method, seed:
        The cut's provenance: shard count, partitioner name, and seed.
    assignment:
        ``node -> shard id`` for every node of the graph.
    shard_nodes:
        Per shard, the sorted tuple of owned node ids (never empty).
    borders:
        The sorted global border-node list (nodes with a neighbour in
        another shard) — the transit set of the cross-shard overlay.
    shard_borders:
        Per shard, the sorted tuple of its border nodes.
    cross_edges:
        Sorted ``(tail, head, weight)`` triples of every edge whose
        endpoints live in different shards.  Both endpoints of a cross
        edge are border nodes by definition.
    """

    parts: int
    method: str
    seed: int
    assignment: dict[int, int]
    shard_nodes: tuple[tuple[int, ...], ...]
    borders: tuple[int, ...]
    shard_borders: tuple[tuple[int, ...], ...]
    cross_edges: tuple[tuple[int, int, float], ...] = field(repr=False)

    @property
    def num_borders(self) -> int:
        """Size of the global border set."""
        return len(self.borders)

    @property
    def edge_cut(self) -> int:
        """Number of cross-shard edges."""
        return len(self.cross_edges)

    def shard_of(self, node: int) -> int:
        """The shard owning ``node``; raises ``KeyError`` if unknown."""
        return self.assignment[node]


def make_shard_plan(
    graph: DiGraph,
    parts: int,
    method: str = "metis",
    seed: int = 0,
) -> ShardPlan:
    """Cut ``graph`` into ``parts`` shards and derive the border overlay.

    ``method`` selects the partitioner: ``"metis"`` (multilevel
    heavy-edge matching), ``"spectral"`` (recursive spectral
    bisection), or ``"uniform"`` (random).  All three guarantee every
    shard is non-empty or raise
    :class:`~repro.exceptions.PartitionError`.
    """
    if method not in PARTITION_METHODS:
        raise ValueError(
            f"method must be one of {PARTITION_METHODS}, got {method!r}"
        )
    if graph.number_of_nodes() == 0:
        raise PartitionError("cannot shard an empty graph")
    if parts < 1:
        raise PartitionError(f"parts must be >= 1, got {parts}")
    if parts == 1:
        # Degenerate single shard: everything is local, no borders, no
        # cross edges — skip the partitioners (some reject K=1) and let
        # the query plane bypass stitching entirely.
        assignment = {node: 0 for node in graph.nodes()}
    elif method == "metis":
        assignment = metis_like_partition(graph, parts, seed=seed)
    elif method == "spectral":
        assignment = spectral_partition(graph, parts, seed=seed)
    else:
        assignment = uniform_partition(graph, parts, seed=seed)

    shard_nodes: list[list[int]] = [[] for _ in range(parts)]
    for node in sorted(assignment):
        shard_nodes[assignment[node]].append(node)

    # ``border_nodes`` returns a raw set — sorted() here is what keeps
    # set iteration order out of every serialized artifact downstream.
    borders = tuple(sorted(border_nodes(graph, assignment)))
    border_set = set(borders)
    shard_borders = tuple(
        tuple(node for node in nodes if node in border_set)
        for nodes in shard_nodes
    )
    cross_edges = tuple(
        sorted(
            (tail, head, weight)
            for tail, head, weight in graph.edges()
            if assignment[tail] != assignment[head]
        )
    )
    plan = ShardPlan(
        parts=parts,
        method=method,
        seed=seed,
        assignment=assignment,
        shard_nodes=tuple(tuple(nodes) for nodes in shard_nodes),
        borders=borders,
        shard_borders=shard_borders,
        cross_edges=cross_edges,
    )
    # The cut and its borders must agree: a nonzero cut with no borders
    # (or vice versa) means the partitioner handed back garbage.
    if (edge_cut(graph, assignment) > 0) != (len(borders) > 0):
        raise PartitionError(
            "inconsistent cut: edge_cut and border_nodes disagree"
        )
    return plan
