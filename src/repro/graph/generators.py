"""Synthetic graph generators standing in for the paper's datasets.

The paper evaluates on two families of real-world graphs (Section 7.1):

* **bounded-degree road networks** (NY, CAL, USA from the 9th DIMACS
  challenge): average directed degree 2.4-2.8, maximum degree <= 9, very
  large diameter, planar-like locality, travel-time weights;
* **scale-free social networks** (DBLP, Youtube, Pokec from SNAP):
  power-law degree distribution with huge hubs, small diameter,
  uniform(0, 1) random weights assigned by the paper itself.

Since the real files are not available offline, :func:`road_network` and
:func:`scale_free_network` reproduce exactly those structural properties at
a configurable scale.  Both are deterministic given a seed.  All generators
return strongly connected graphs so that every (s, t) query has an answer
in the failure-free graph.
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable

from repro.graph.digraph import DiGraph

_SQRT2 = math.sqrt(2.0)


def road_network(
    width: int,
    height: int,
    seed: int = 0,
    extra_edge_fraction: float = 0.25,
    diagonal_fraction: float = 0.05,
    weight_jitter: float = 0.3,
) -> DiGraph:
    """Generate a bounded-degree road-like network on a ``width x height`` grid.

    Construction: nodes are grid points.  A random spanning tree over the
    grid (traversed in both directions) guarantees strong connectivity;
    then ``extra_edge_fraction`` of the remaining grid adjacencies and
    ``diagonal_fraction`` of diagonal adjacencies are added, also in both
    directions.  Weights model travel time: the geometric edge length times
    a per-edge uniform jitter in ``[1, 1 + weight_jitter]``, with forward
    and backward direction jittered independently (road networks are
    symmetric in topology but asymmetric in travel time).

    The resulting directed average degree lands in the 2.4-3.0 band of the
    paper's Table 2 road rows, and the maximum total degree stays <= 16
    (<= 8 per direction), matching the bounded-degree regime.

    Parameters
    ----------
    width, height:
        Grid dimensions; the graph has ``width * height`` nodes labelled
        ``row * width + col``.
    seed:
        Seed for the deterministic PRNG.
    extra_edge_fraction:
        Fraction of non-tree axis-aligned grid adjacencies to keep.
    diagonal_fraction:
        Fraction of diagonal adjacencies to add (models shortcut roads).
    weight_jitter:
        Upper bound of the multiplicative travel-time jitter.
    """
    if width < 2 or height < 2:
        raise ValueError("road_network needs width >= 2 and height >= 2")
    rng = random.Random(seed)
    graph = DiGraph()

    def node_id(row: int, col: int) -> int:
        return row * width + col

    graph.add_nodes(range(width * height))

    def travel_time(length: float) -> float:
        return length * (1.0 + rng.random() * weight_jitter)

    def add_road(a: int, b: int, length: float) -> None:
        graph.add_edge(a, b, travel_time(length))
        graph.add_edge(b, a, travel_time(length))

    # Random spanning tree via randomized DFS over the grid lattice.
    start = (rng.randrange(height), rng.randrange(width))
    visited = {start}
    stack = [start]
    tree_edges: set[tuple[int, int]] = set()
    while stack:
        row, col = stack[-1]
        neighbors = [
            (row + dr, col + dc)
            for dr, dc in ((0, 1), (0, -1), (1, 0), (-1, 0))
            if 0 <= row + dr < height and 0 <= col + dc < width
        ]
        rng.shuffle(neighbors)
        for nxt in neighbors:
            if nxt not in visited:
                visited.add(nxt)
                a = node_id(row, col)
                b = node_id(nxt[0], nxt[1])
                tree_edges.add((min(a, b), max(a, b)))
                stack.append(nxt)
                break
        else:
            stack.pop()

    for a, b in tree_edges:
        add_road(a, b, 1.0)

    # Extra axis-aligned roads.
    for row in range(height):
        for col in range(width):
            a = node_id(row, col)
            for dr, dc in ((0, 1), (1, 0)):
                nr, nc = row + dr, col + dc
                if nr >= height or nc >= width:
                    continue
                b = node_id(nr, nc)
                key = (min(a, b), max(a, b))
                if key in tree_edges:
                    continue
                if rng.random() < extra_edge_fraction:
                    add_road(a, b, 1.0)

    # Diagonal shortcut roads.
    for row in range(height - 1):
        for col in range(width - 1):
            if rng.random() < diagonal_fraction:
                add_road(node_id(row, col), node_id(row + 1, col + 1), _SQRT2)
            if rng.random() < diagonal_fraction:
                add_road(node_id(row, col + 1), node_id(row + 1, col), _SQRT2)

    return graph


def scale_free_network(
    n: int,
    attach: int = 3,
    seed: int = 0,
    weight_sampler: Callable[[random.Random], float] | None = None,
    attach_spread: bool = True,
) -> DiGraph:
    """Generate a scale-free social-like network by preferential attachment.

    Construction follows Barabasi-Albert: start from a directed cycle over
    ``attach + 1`` seed nodes, then each new node attaches to ``attach``
    distinct existing nodes chosen proportionally to their current degree.
    Each undirected attachment becomes two directed edges, matching the
    paper's symmetrisation of DBLP/Youtube ("we make them directed by
    adding an edge (v, u) for each edge (u, v)").  Weights default to
    uniform(0, 1) per directed edge, exactly the paper's protocol for
    social networks.

    The resulting degree distribution is power-law with hubs (max degree
    grows ~ sqrt(n)), the diameter is O(log n), and the graph is strongly
    connected — the regime where the paper's distance graphs get dense and
    sparsification (DISO-S) pays off.

    Parameters
    ----------
    n:
        Number of nodes.
    attach:
        Edges added per arriving node (the BA ``m`` parameter).
    seed:
        Seed for the deterministic PRNG.
    weight_sampler:
        Optional callable mapping the PRNG to a weight; defaults to
        ``uniform(0, 1)`` with a small positive floor so weights stay
        strictly positive.
    attach_spread:
        When True (default) the per-node attachment count is sampled
        uniformly from ``[1, 2 * attach - 1]`` (mean ``attach``) instead
        of being constant.  Real social networks have a heavy
        low-degree fringe (most users have few links); plain BA's
        minimum degree of ``2 * attach`` erases it, which in turn starves
        independent-set-based cover selection of eliminable nodes.
    """
    if n < attach + 1:
        raise ValueError("scale_free_network needs n >= attach + 1")
    if attach < 1:
        raise ValueError("attach must be >= 1")
    rng = random.Random(seed)
    if weight_sampler is None:
        def weight_sampler(r: random.Random) -> float:
            return 1e-6 + r.random()

    graph = DiGraph()
    seed_count = attach + 1
    # Seed cycle keeps the graph strongly connected from the start.
    repeated: list[int] = []
    for i in range(seed_count):
        j = (i + 1) % seed_count
        graph.add_edge(i, j, weight_sampler(rng))
        graph.add_edge(j, i, weight_sampler(rng))
        repeated.extend((i, j))

    for new_node in range(seed_count, n):
        if attach_spread and attach > 1:
            node_attach = rng.randint(1, 2 * attach - 1)
        else:
            node_attach = attach
        node_attach = min(node_attach, new_node)
        targets: set[int] = set()
        while len(targets) < node_attach:
            candidate = repeated[rng.randrange(len(repeated))]
            targets.add(candidate)
        # Sorted so edge-insertion and ``repeated`` order (and hence the
        # downstream preferential-attachment draws) are set-order-free.
        for target in sorted(targets):
            graph.add_edge(new_node, target, weight_sampler(rng))
            graph.add_edge(target, new_node, weight_sampler(rng))
            repeated.extend((new_node, target))
    return graph


def gnm_random_graph(
    n: int,
    m: int,
    seed: int = 0,
    max_weight: float = 1.0,
) -> DiGraph:
    """Generate a strongly connected G(n, m)-style random directed graph.

    A random directed Hamiltonian cycle guarantees strong connectivity;
    the remaining ``m - n`` edges are sampled uniformly among all ordered
    pairs.  Weights are uniform in ``(0, max_weight]``.
    """
    if m < n:
        raise ValueError("gnm_random_graph needs m >= n for connectivity")
    rng = random.Random(seed)
    graph = DiGraph()
    order = list(range(n))
    rng.shuffle(order)
    for i in range(n):
        tail = order[i]
        head = order[(i + 1) % n]
        graph.add_edge(tail, head, rng.random() * max_weight + 1e-9)
    while graph.number_of_edges() < m:
        tail = rng.randrange(n)
        head = rng.randrange(n)
        if tail != head and not graph.has_edge(tail, head):
            graph.add_edge(tail, head, rng.random() * max_weight + 1e-9)
    return graph


def ring_network(n: int, weight: float = 1.0, bidirectional: bool = True) -> DiGraph:
    """Generate a ring of ``n`` nodes; handy for analytic tests."""
    if n < 2:
        raise ValueError("ring_network needs n >= 2")
    graph = DiGraph()
    for i in range(n):
        j = (i + 1) % n
        graph.add_edge(i, j, weight)
        if bidirectional:
            graph.add_edge(j, i, weight)
    return graph


def path_network(n: int, weight: float = 1.0, bidirectional: bool = True) -> DiGraph:
    """Generate a simple path ``0 - 1 - ... - n-1``."""
    if n < 2:
        raise ValueError("path_network needs n >= 2")
    graph = DiGraph()
    for i in range(n - 1):
        graph.add_edge(i, i + 1, weight)
        if bidirectional:
            graph.add_edge(i + 1, i, weight)
    return graph


def complete_network(n: int, weight: float = 1.0) -> DiGraph:
    """Generate a complete directed graph on ``n`` nodes."""
    graph = DiGraph()
    for tail in range(n):
        for head in range(n):
            if tail != head:
                graph.add_edge(tail, head, weight)
    return graph


def grid_network(width: int, height: int, weight: float = 1.0) -> DiGraph:
    """Generate a full bidirectional grid with uniform weights.

    Unlike :func:`road_network` this keeps every lattice edge and uses a
    constant weight, which makes expected distances easy to compute in
    tests.
    """
    graph = DiGraph()
    graph.add_nodes(range(width * height))
    for row in range(height):
        for col in range(width):
            a = row * width + col
            if col + 1 < width:
                b = a + 1
                graph.add_edge(a, b, weight)
                graph.add_edge(b, a, weight)
            if row + 1 < height:
                b = a + width
                graph.add_edge(a, b, weight)
                graph.add_edge(b, a, weight)
    return graph
