"""Tests for the partitioning-based transit set competitors (Table 4)."""

from __future__ import annotations

import pytest

from repro.cover.partitioning import (
    border_nodes,
    edge_cut,
    metis_like_partition,
    spectral_partition,
    uniform_partition,
)
from repro.graph.generators import grid_network


class TestUniform:
    def test_covers_all_nodes(self, small_road):
        assignment = uniform_partition(small_road, 4, seed=1)
        assert set(assignment) == set(small_road.nodes())
        assert set(assignment.values()) <= set(range(4))

    def test_deterministic(self, small_road):
        a = uniform_partition(small_road, 4, seed=1)
        b = uniform_partition(small_road, 4, seed=1)
        assert a == b

    def test_invalid_parts_raises(self, small_road):
        with pytest.raises(ValueError):
            uniform_partition(small_road, 0)


class TestMetisLike:
    def test_covers_all_nodes(self, small_road):
        assignment = metis_like_partition(small_road, 4, seed=1)
        assert set(assignment) == set(small_road.nodes())

    def test_uses_requested_parts(self, small_road):
        assignment = metis_like_partition(small_road, 4, seed=1)
        assert len(set(assignment.values())) <= 4

    def test_beats_uniform_on_cut(self):
        g = grid_network(12, 12)
        uniform = uniform_partition(g, 4, seed=1)
        metis = metis_like_partition(g, 4, seed=1)
        assert edge_cut(g, metis) < edge_cut(g, uniform)

    def test_invalid_parts_raises(self, small_road):
        with pytest.raises(ValueError):
            metis_like_partition(small_road, 0)


class TestSpectral:
    def test_covers_all_nodes(self, small_road):
        assignment = spectral_partition(small_road, 4, seed=1)
        assert set(assignment) == set(small_road.nodes())

    def test_beats_uniform_on_cut(self):
        g = grid_network(12, 12)
        uniform = uniform_partition(g, 4, seed=1)
        spectral = spectral_partition(g, 4, seed=1)
        assert edge_cut(g, spectral) < edge_cut(g, uniform)

    def test_single_part(self, small_road):
        assignment = spectral_partition(small_road, 1, seed=1)
        assert set(assignment.values()) == {0}


class TestBorderNodes:
    def test_borders_have_cross_partition_neighbors(self, small_road):
        assignment = metis_like_partition(small_road, 4, seed=1)
        borders = border_nodes(small_road, assignment)
        for node in borders:
            neighbors = set(small_road.successors(node)) | set(
                small_road.predecessors(node)
            )
            assert any(
                assignment[other] != assignment[node] for other in neighbors
            )

    def test_non_borders_are_interior(self, small_road):
        assignment = metis_like_partition(small_road, 4, seed=1)
        borders = border_nodes(small_road, assignment)
        for node in small_road.nodes():
            if node in borders:
                continue
            neighbors = set(small_road.successors(node)) | set(
                small_road.predecessors(node)
            )
            assert all(
                assignment[other] == assignment[node] for other in neighbors
            )

    def test_single_partition_has_no_borders(self, small_road):
        assignment = {node: 0 for node in small_road.nodes()}
        assert border_nodes(small_road, assignment) == set()


class TestEdgeCut:
    def test_zero_for_single_partition(self, small_road):
        assignment = {node: 0 for node in small_road.nodes()}
        assert edge_cut(small_road, assignment) == 0

    def test_counts_cross_edges(self):
        g = grid_network(2, 2)  # nodes 0,1,2,3; bidirectional edges
        assignment = {0: 0, 1: 0, 2: 1, 3: 1}
        # Crossing pairs: (0,2) both directions and (1,3) both = 4 edges.
        assert edge_cut(g, assignment) == 4
