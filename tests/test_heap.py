"""Unit and property tests for the addressable binary heap."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.pathing.heap import AddressableHeap


class TestBasics:
    def test_push_pop_order(self):
        heap = AddressableHeap()
        heap.push("a", 3.0)
        heap.push("b", 1.0)
        heap.push("c", 2.0)
        assert heap.pop() == ("b", 1.0)
        assert heap.pop() == ("c", 2.0)
        assert heap.pop() == ("a", 3.0)

    def test_duplicate_push_raises(self):
        heap = AddressableHeap()
        heap.push("a", 1.0)
        with pytest.raises(KeyError):
            heap.push("a", 2.0)

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            AddressableHeap().pop()

    def test_peek_keeps_item(self):
        heap = AddressableHeap()
        heap.push(1, 5.0)
        assert heap.peek() == (1, 5.0)
        assert len(heap) == 1

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            AddressableHeap().peek()

    def test_peek_priority_empty_is_inf(self):
        assert AddressableHeap().peek_priority() == float("inf")

    def test_peek_priority(self):
        heap = AddressableHeap()
        heap.push("x", 7.0)
        assert heap.peek_priority() == 7.0

    def test_contains_and_len(self):
        heap = AddressableHeap()
        heap.push("a", 1.0)
        assert "a" in heap
        assert "b" not in heap
        assert len(heap) == 1
        assert bool(heap)

    def test_iter_yields_all_items(self):
        heap = AddressableHeap()
        for i in range(5):
            heap.push(i, float(i))
        assert sorted(heap) == [0, 1, 2, 3, 4]

    def test_fifo_tiebreak(self):
        heap = AddressableHeap()
        heap.push("first", 1.0)
        heap.push("second", 1.0)
        assert heap.pop()[0] == "first"
        assert heap.pop()[0] == "second"


class TestUpdate:
    def test_decrease_key(self):
        heap = AddressableHeap()
        heap.push("a", 5.0)
        heap.push("b", 2.0)
        heap.update("a", 1.0)
        assert heap.pop() == ("a", 1.0)

    def test_increase_key(self):
        heap = AddressableHeap()
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        heap.update("a", 3.0)
        assert heap.pop() == ("b", 2.0)

    def test_update_absent_inserts(self):
        heap = AddressableHeap()
        heap.update("a", 1.0)
        assert heap.pop() == ("a", 1.0)

    def test_update_if_lower(self):
        heap = AddressableHeap()
        heap.push("a", 3.0)
        assert heap.update_if_lower("a", 2.0)
        assert not heap.update_if_lower("a", 5.0)
        assert heap.priority("a") == 2.0

    def test_update_if_lower_inserts(self):
        heap = AddressableHeap()
        assert heap.update_if_lower("new", 1.0)
        assert "new" in heap

    def test_remove_returns_priority(self):
        heap = AddressableHeap()
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        assert heap.remove("a") == 1.0
        assert "a" not in heap
        assert heap.pop() == ("b", 2.0)

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            AddressableHeap().remove("x")

    def test_priority_lookup(self):
        heap = AddressableHeap()
        heap.push("a", 9.5)
        assert heap.priority("a") == 9.5


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), max_size=100))
def test_heapsort_matches_sorted(values):
    """Pushing everything and popping yields non-decreasing priorities."""
    heap = AddressableHeap()
    for index, value in enumerate(values):
        heap.push(index, value)
    popped = []
    while heap:
        popped.append(heap.pop()[1])
    assert popped == sorted(values)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["push", "update", "remove", "pop"]),
            st.integers(min_value=0, max_value=20),
            st.floats(min_value=0, max_value=100),
        ),
        max_size=200,
    )
)
def test_heap_model_check(operations):
    """Random operation sequences agree with a dict+min reference model."""
    heap = AddressableHeap()
    model: dict[int, float] = {}
    order: dict[int, int] = {}
    counter = 0
    for op, key, value in operations:
        if op == "push":
            if key in model:
                continue
            heap.push(key, value)
            model[key] = value
            order[key] = counter
            counter += 1
        elif op == "update":
            heap.update(key, value)
            if key not in model:
                order[key] = counter
                counter += 1
            model[key] = value
        elif op == "remove":
            if key not in model:
                continue
            assert heap.remove(key) == model.pop(key)
            del order[key]
        elif op == "pop":
            if not model:
                continue
            item, priority = heap.pop()
            expected = min(model, key=lambda k: (model[k], order[k]))
            assert item == expected
            assert priority == model.pop(item)
            del order[item]
    assert len(heap) == len(model)
