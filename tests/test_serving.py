"""The process-pool serving plane must agree with in-process queries.

Workers map the snapshot independently, so parity across the pipe —
same answers, same order, for Query objects and plain tuples — is the
core contract.  On top of that: chunk sharding must restore input
order, a crashed worker must be replaced without losing answers, a
poison query must come back as a *per-query* error (zero restarts),
and the ``processes=`` backend of :class:`QueryEngine` must behave
like its thread backend.  Pools stay at 2 workers and graphs small:
this suite runs on one core in CI.

Set ``DSO_SERVING_START_METHOD=spawn`` (or ``fork``) to pin the
multiprocessing start method — CI runs this file under both.
"""

from __future__ import annotations

import math
import os
import time

import pytest

from repro.oracle.diso import DISO
from repro.oracle.parallel import (
    QueryEngine,
    ThroughputReport,
    latency_percentile,
)
from repro.oracle.snapshot import save_snapshot
from repro.serving import QueryService
from repro.workload.queries import generate_queries
from util import random_failures_from, random_graph

START_METHOD = os.environ.get("DSO_SERVING_START_METHOD") or None


def make_service(path, **kwargs) -> QueryService:
    """A QueryService honouring the CI start-method override."""
    kwargs.setdefault("start_method", START_METHOD)
    return QueryService(path, **kwargs)


@pytest.fixture(scope="module")
def served():
    """One frozen DISO, its snapshot on disk, and a generated batch."""
    graph = random_graph(11, n=40, extra=90)
    frozen = DISO(graph, tau=3).freeze()
    batch = generate_queries(graph, 24, f_gen=3, p=0.01, seed=4)
    expected = [frozen.query(q.source, q.target, q.failed) for q in batch]
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as tmp:
        path = save_snapshot(frozen, Path(tmp) / "o.dsosnap")
        yield graph, frozen, path, batch, expected


class TestQueryService:
    def test_parity_and_order_two_workers(self, served):
        _, _, path, batch, expected = served
        with make_service(path, workers=2) as service:
            report = service.run(batch)
        assert report.answers == expected
        assert report.workers == 2
        assert len(report.latencies) == len(batch)
        assert all(latency >= 0.0 for latency in report.latencies)

    def test_accepts_plain_tuples_and_failure_sets(self, served):
        graph, frozen, path, _, _ = served
        failed = random_failures_from(graph, 5, 3)
        triples = [(0, 9, None), (3, 3, None), (1, 17, tuple(failed))]
        expected = [
            frozen.query(s, t, frozenset(f) if f else None)
            for s, t, f in triples
        ]
        with make_service(path, workers=2) as service:
            assert service.run(triples).answers == expected

    def test_tiny_chunks_exercise_many_batches(self, served):
        _, _, path, batch, expected = served
        with make_service(path, workers=2, chunk_size=1) as service:
            report = service.run(batch)
        assert report.answers == expected
        assert sum(s.batches for s in report.per_worker) == len(batch)
        # Round-robin dealing touches both workers.
        assert all(s.queries > 0 for s in report.per_worker)

    def test_empty_batch(self, served):
        _, _, path, _, _ = served
        with make_service(path, workers=2) as service:
            report = service.run([])
        assert report.answers == []
        assert report.queries_per_second == pytest.approx(0.0)

    def test_crashed_worker_is_replaced(self, served):
        _, _, path, batch, expected = served
        with make_service(path, workers=2) as service:
            first = service.run(batch)
            assert first.answers == expected
            victim = service._pool[0].process
            service.inject_crash(0)
            for _ in range(200):
                if not victim.is_alive():
                    break
                time.sleep(0.05)
            assert not victim.is_alive()
            report = service.run(batch)
        assert report.answers == expected

    def test_crash_mid_run_resends_outstanding_chunks(self, served):
        _, _, path, batch, expected = served
        with make_service(path, workers=2) as service:
            # The crash message is queued ahead of this run's chunks;
            # depending on timing the worker dies either just before the
            # run (replaced by the idle liveness check) or mid-run while
            # holding chunks (replaced and its work re-dispatched).
            # Either way the service must replace it and answer fully.
            service.inject_crash(1)
            report = service.run(batch)
            assert service.total_restarts >= 1
        assert report.answers == expected

    def test_missing_snapshot_fails_fast(self, tmp_path):
        with pytest.raises(RuntimeError, match="failed to load"):
            make_service(tmp_path / "nope.dsosnap", workers=1).start()

    def test_rejects_bad_worker_count(self, served):
        _, _, path, _, _ = served
        with pytest.raises(ValueError):
            QueryService(path, workers=0)

    def test_report_summary_schema(self, served):
        _, _, path, batch, _ = served
        with make_service(path, workers=1) as service:
            summary = service.run(batch).summary()
        assert set(summary) == {
            "workers", "queries", "qps", "p50_us", "p99_us", "restarts",
            "errors", "result_plane", "dispatch_overhead_us",
            "pipe_bytes_per_batch", "cache_hits", "cache_hit_ratio",
            "precomputed_hits", "shed_rate", "shards", "cross_shard_ratio",
        }
        assert summary["errors"] == 0
        # The unsharded plane reports no shard structure.
        assert summary["shards"] == 0
        assert summary["cross_shard_ratio"] == 0.0
        assert summary["result_plane"] in ("shm", "pipe")
        assert summary["pipe_bytes_per_batch"] > 0
        # Caching and admission are off by default: a plain service
        # reports zeros, not surprises.
        assert summary["cache_hits"] == 0
        assert summary["cache_hit_ratio"] == 0.0
        assert summary["precomputed_hits"] == 0
        assert summary["shed_rate"] == 0.0

    def test_clean_run_reports_no_errors(self, served):
        _, _, path, batch, _ = served
        with make_service(path, workers=2) as service:
            report = service.run(batch)
        assert report.errors == [None] * len(batch)
        assert report.error_count == 0
        assert report.error_indices == []
        assert report.statuses == ["ok"] * len(batch)

    def test_poison_query_is_per_query_error_zero_restarts(self, served):
        """The acceptance bar: one poison query -> exactly one error,
        zero restarts, bitwise-identical answers everywhere else."""
        _, _, path, batch, expected = served
        poisoned = list(batch)
        poisoned.insert(5, (10**9, 0, None))  # node id not in the graph
        with make_service(path, workers=2, chunk_size=3) as service:
            report = service.run(poisoned)
            assert service.total_restarts == 0
        assert report.restarts == 0
        assert report.error_count == 1
        assert report.error_indices == [5]
        assert "QueryError" in report.errors[5]
        assert math.isnan(report.answers[5])
        assert report.statuses[5] == "error"
        clean = [a for i, a in enumerate(report.answers) if i != 5]
        assert clean == expected


class TestQueryEngineProcessBackend:
    def test_parity_with_thread_backend(self, served):
        _, frozen, _, batch, expected = served
        with QueryEngine(frozen, processes=2) as engine:
            report = engine.run(batch)
        assert report.answers == expected
        assert report.threads == 2
        assert len(report.latencies) == len(batch)

    def test_requires_frozen_oracle(self):
        dict_oracle = DISO(random_graph(12), tau=3)
        with pytest.raises(ValueError, match="frozen"):
            QueryEngine(dict_oracle, processes=2)

    def test_close_is_idempotent(self, served):
        _, frozen, _, batch, _ = served
        engine = QueryEngine(frozen, processes=1)
        engine.run(batch[:4])
        engine.close()
        engine.close()

    def test_cache_knobs_require_process_backend(self, served):
        _, frozen, _, _, _ = served
        with pytest.raises(ValueError, match="process backend"):
            QueryEngine(frozen, threads=2, cache_size=64)
        with pytest.raises(ValueError, match="process backend"):
            QueryEngine(frozen, threads=2, deadline_ms=5.0)

    def test_cached_engine_parity_and_hit_reporting(self, served):
        _, frozen, _, batch, expected = served
        with QueryEngine(frozen, processes=1, cache_size=256) as engine:
            cold = engine.run(batch)
            warm = engine.run(batch)
        assert cold.answers == expected
        assert warm.answers == expected
        assert warm.cache_hits == len(batch)
        assert warm.cache_hit_ratio == pytest.approx(1.0)
        assert warm.shed_rate == pytest.approx(0.0)

    def test_process_backend_surfaces_per_query_errors(self, served):
        from repro.workload.queries import Query

        _, frozen, _, batch, expected = served
        poisoned = list(batch[:6]) + [Query(10**9, 0, None)]
        with QueryEngine(frozen, processes=1) as engine:
            report = engine.run(poisoned)
        assert report.error_count == 1
        assert report.errors[-1] is not None
        assert math.isnan(report.answers[-1])
        assert report.answers[:6] == expected[:6]


class TestThroughputPercentiles:
    def test_latency_percentile_nearest_rank(self):
        samples = [0.004, 0.001, 0.002, 0.003]
        assert latency_percentile(samples, 0.50) == 0.002
        assert latency_percentile(samples, 0.99) == 0.004
        assert latency_percentile([], 0.99) == 0.0
        assert latency_percentile([7.0], 0.50) == 7.0

    def test_report_properties(self):
        report = ThroughputReport(
            answers=[1.0, 2.0, 3.0],
            wall_seconds=0.5,
            threads=2,
            latencies=[0.010, 0.030, 0.020],
        )
        assert report.queries_per_second == pytest.approx(6.0)
        assert report.p50_seconds == pytest.approx(0.020)
        assert report.p99_seconds == pytest.approx(0.030)

    def test_thread_and_sequential_runs_record_latencies(self):
        graph = random_graph(13)
        engine = QueryEngine(DISO(graph, tau=3), threads=2)
        batch = generate_queries(graph, 6, f_gen=2, p=0.01, seed=1)
        threaded = engine.run(batch)
        sequential = engine.run_sequential(batch)
        assert threaded.answers == sequential.answers
        assert len(threaded.latencies) == len(batch)
        assert len(sequential.latencies) == len(batch)
        assert sequential.p99_seconds >= sequential.p50_seconds > 0.0
