"""Experiment reproduction: one module per table/figure of the paper."""

from repro.experiments.accuracy import format_accuracy, run_accuracy
from repro.experiments.harness import (
    BatchResult,
    compare_methods,
    exact_answers,
    run_batch,
)
from repro.experiments.report import (
    human_count,
    human_ms,
    human_seconds,
    render_series,
    render_table,
)
from repro.experiments.maintenance_exp import (
    format_maintenance_experiment,
    run_maintenance_experiment,
)
from repro.experiments.replay import format_replay, run_replay
from repro.experiments.summary import format_all, run_all
from repro.experiments.sensitivity import (
    format_affected_nodes_sweep,
    format_alpha_sweep,
    format_theta_sweep,
    format_throughput_scaling,
    run_affected_nodes_sweep,
    run_alpha_sweep,
    run_theta_sweep,
    run_throughput_scaling,
)
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.table3 import format_table3, run_table3
from repro.experiments.table4 import format_table4, run_table4
from repro.experiments.table5 import format_table5, run_table5, standard_factories
from repro.experiments.table6 import format_table6, run_table6
from repro.experiments.figure4 import format_figure4, run_figure4
from repro.experiments.figure5 import format_figure5, run_figure5
from repro.experiments.figure6 import format_figure6, run_figure6

__all__ = [
    "BatchResult",
    "run_batch",
    "compare_methods",
    "exact_answers",
    "standard_factories",
    "run_table2",
    "format_table2",
    "run_table3",
    "format_table3",
    "run_table4",
    "format_table4",
    "run_table5",
    "format_table5",
    "run_table6",
    "format_table6",
    "run_figure4",
    "format_figure4",
    "run_figure5",
    "format_figure5",
    "run_figure6",
    "format_figure6",
    "run_accuracy",
    "format_accuracy",
    "run_theta_sweep",
    "format_theta_sweep",
    "run_alpha_sweep",
    "format_alpha_sweep",
    "run_affected_nodes_sweep",
    "format_affected_nodes_sweep",
    "run_throughput_scaling",
    "format_throughput_scaling",
    "run_maintenance_experiment",
    "format_maintenance_experiment",
    "run_replay",
    "format_replay",
    "run_all",
    "format_all",
    "human_count",
    "human_ms",
    "human_seconds",
    "render_table",
    "render_series",
]
