"""Degenerate-shape edge cases for the CSR bounded Dijkstra.

The frozen query plane promises ``csr_bounded_dijkstra`` matches the
dict-based :func:`bounded_dijkstra` semantics exactly.  The main suites
exercise it on healthy graphs; these tests pin the degenerate shapes a
build over real data hits — a bound of zero radius (every neighbour is
transit), landmarks unreachable across a disconnect, and the one-node
graph — where off-by-one index handling would otherwise hide.
"""

from __future__ import annotations

from repro.graph.csr import INFINITY, FrozenGraph, SearchArena
from repro.graph.digraph import DiGraph
from repro.pathing.bounded import bounded_dijkstra
from repro.pathing.csr_bounded import csr_bounded_dijkstra


def _flags(frozen: FrozenGraph, transit: set[int]) -> bytearray:
    flags = bytearray(len(frozen.node_ids))
    for label in transit:
        flags[frozen.index_of[label]] = 1
    return flags


def _access_by_label(frozen: FrozenGraph, result) -> dict[int, float]:
    return {
        frozen.node_ids[index]: dist
        for index, dist in result.access.items()
    }


def _assert_parity(graph: DiGraph, source: int, transit: set[int]) -> None:
    """CSR and dict implementations agree on access sets and labels."""
    frozen = FrozenGraph.from_digraph(graph)
    for direction in ("out", "in"):
        reference = bounded_dijkstra(
            graph, source, transit, direction=direction
        )
        result = csr_bounded_dijkstra(
            frozen,
            frozen.index_of[source],
            _flags(frozen, transit),
            direction=direction,
        )
        assert _access_by_label(frozen, result) == reference.access


def test_zero_radius_bound_stops_at_every_neighbor():
    """All neighbours transit: the search is one ring deep, no further."""
    # Star with a tail: 0 -> {1, 2, 3}, 1 -> 4.  With 1..3 all transit,
    # node 4 must never be labelled — the bound cuts before the tail.
    graph = DiGraph(
        [(0, 1, 1.0), (0, 2, 2.0), (0, 3, 3.0), (1, 4, 1.0)]
    )
    transit = {1, 2, 3}
    frozen = FrozenGraph.from_digraph(graph)
    result = csr_bounded_dijkstra(
        frozen, frozen.index_of[0], _flags(frozen, transit)
    )
    assert _access_by_label(frozen, result) == {1: 1.0, 2: 2.0, 3: 3.0}
    assert result.distance(frozen.index_of[4]) == INFINITY
    # 0 plus the three transit neighbours settle; the tail does not.
    assert result.settled_count == 4
    _assert_parity(graph, 0, transit)


def test_transit_source_is_expanded_not_terminal():
    """The bound exempts the source: a transit source still searches."""
    graph = DiGraph([(0, 1, 1.0), (1, 2, 1.0)])
    transit = {0, 2}
    frozen = FrozenGraph.from_digraph(graph)
    result = csr_bounded_dijkstra(
        frozen, frozen.index_of[0], _flags(frozen, transit)
    )
    assert _access_by_label(frozen, result) == {0: 0.0, 2: 2.0}
    _assert_parity(graph, 0, transit)


def test_unreachable_landmark_across_disconnect():
    """A transit node in another component never enters the access set."""
    # Two components: {0, 1} and {2, 3}; transit node 3 is unreachable
    # from 0 in either direction.
    graph = DiGraph([(0, 1, 1.0), (2, 3, 1.0)])
    transit = {1, 3}
    frozen = FrozenGraph.from_digraph(graph)
    result = csr_bounded_dijkstra(
        frozen, frozen.index_of[0], _flags(frozen, transit)
    )
    assert _access_by_label(frozen, result) == {1: 1.0}
    assert result.distance(frozen.index_of[3]) == INFINITY
    assert result.distance(frozen.index_of[2]) == INFINITY
    _assert_parity(graph, 0, transit)


def test_unreachable_by_direction_only():
    """Directed reachability: the landmark is in-reachable, not out."""
    graph = DiGraph([(1, 0, 1.0), (1, 2, 1.0)])
    transit = {1}
    frozen = FrozenGraph.from_digraph(graph)
    out = csr_bounded_dijkstra(
        frozen, frozen.index_of[0], _flags(frozen, transit), direction="out"
    )
    assert _access_by_label(frozen, out) == {}
    inward = csr_bounded_dijkstra(
        frozen, frozen.index_of[0], _flags(frozen, transit), direction="in"
    )
    assert _access_by_label(frozen, inward) == {1: 1.0}
    _assert_parity(graph, 0, transit)


def test_single_node_graph():
    """One node, no edges: the smallest valid search still terminates."""
    graph = DiGraph()
    graph.add_nodes([5])
    frozen = FrozenGraph.from_digraph(graph)

    plain = csr_bounded_dijkstra(frozen, 0, _flags(frozen, set()))
    assert plain.access == {}
    assert plain.settled_count == 1

    as_transit = csr_bounded_dijkstra(frozen, 0, _flags(frozen, {5}))
    assert _access_by_label(frozen, as_transit) == {5: 0.0}
    _assert_parity(graph, 5, {5})
    _assert_parity(graph, 5, set())


def test_edge_cases_share_one_arena():
    """The degenerate searches reuse an arena without cross-talk."""
    graph = DiGraph([(0, 1, 1.0), (2, 3, 1.0)])
    frozen = FrozenGraph.from_digraph(graph)
    arena = SearchArena(len(frozen.node_ids))

    first = csr_bounded_dijkstra(
        frozen, frozen.index_of[0], _flags(frozen, {1}), arena=arena
    )
    assert _access_by_label(frozen, first) == {1: 1.0}
    second = csr_bounded_dijkstra(
        frozen, frozen.index_of[2], _flags(frozen, {3}), arena=arena
    )
    assert _access_by_label(frozen, second) == {3: 1.0}
    # The first result's labels are stale once the arena is reused.
    assert first.generation != second.generation
