"""Edge-case tests across the whole stack.

Exotic-but-legal inputs: zero weights, self loops, duplicate/unknown
failures, degenerate transit sets, disconnected graphs, and empty
structures — the inputs a downstream user will eventually feed in.
"""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.generators import path_network
from repro.cover.isc import isc_path_cover
from repro.oracle.adiso import ADISO
from repro.oracle.base import INFINITY
from repro.oracle.diso import DISO
from repro.pathing.bounded import bounded_dijkstra
from repro.pathing.dijkstra import dijkstra, shortest_distance
from repro.overlay.sparsify import sparsify_graph


class TestZeroWeights:
    def test_dijkstra_handles_zero_edges(self):
        g = DiGraph([(0, 1, 0.0), (1, 2, 0.0), (0, 2, 1.0)])
        dist, _ = dijkstra(g, 0)
        assert dist[2] == 0.0

    def test_diso_with_zero_weights(self):
        g = DiGraph(
            [
                (0, 1, 0.0), (1, 2, 0.0), (2, 3, 1.0),
                (3, 2, 1.0), (2, 1, 0.0), (1, 0, 0.0),
                (0, 3, 5.0), (3, 0, 5.0),
            ]
        )
        oracle = DISO(g, transit={1, 2})
        assert oracle.query(0, 3) == pytest.approx(1.0)
        assert oracle.query(0, 3, failed={(2, 3)}) == pytest.approx(5.0)


class TestSelfLoops:
    def test_self_loop_never_helps(self):
        g = DiGraph([(0, 0, 0.5), (0, 1, 1.0), (1, 0, 1.0)])
        oracle = DISO(g, transit={0})
        assert oracle.query(0, 1) == pytest.approx(1.0)

    def test_isc_ignores_self_loops(self):
        g = path_network(6)
        g.add_edge(2, 2, 1.0)
        result = isc_path_cover(g, tau=1, theta=5.0)
        assert result.cover  # no crash, valid cover


class TestFailureSets:
    def test_duplicate_failures_equivalent(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        a = oracle.query(0, 100, failed={(0, 1)})
        b = oracle.query(0, 100, failed=frozenset({(0, 1)}))
        assert a == b

    def test_failing_every_edge(self):
        g = DiGraph([(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)])
        oracle = DISO(g, transit={1})
        everything = g.edge_set()
        assert oracle.query(0, 2, everything) == INFINITY

    def test_failing_reverse_direction_only(self):
        g = DiGraph([(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)])
        oracle = DISO(g, transit={1})
        # Failing (1, 0) must not affect the 0 -> 2 direction.
        assert oracle.query(0, 2, failed={(1, 0)}) == pytest.approx(2.0)

    def test_empty_failure_set_variants(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        base = oracle.query(0, 100)
        assert oracle.query(0, 100, failed=set()) == base
        assert oracle.query(0, 100, failed=frozenset()) == base
        assert oracle.query(0, 100, failed=None) == base


class TestDegenerateTransitSets:
    def test_single_transit_node(self, small_road):
        oracle = DISO(small_road, transit={70})
        for target in (1, 70, 140):
            assert oracle.query(0, target) == pytest.approx(
                shortest_distance(small_road, 0, target)
            )

    def test_all_nodes_transit(self):
        g = path_network(6)
        oracle = DISO(g, transit=set(g.nodes()))
        assert oracle.query(0, 5) == pytest.approx(5.0)
        assert oracle.query(0, 5, failed={(2, 3)}) == INFINITY

    def test_endpoints_as_transit(self, small_road):
        oracle = DISO(small_road, transit={0, 143})
        assert oracle.query(0, 143) == pytest.approx(
            shortest_distance(small_road, 0, 143)
        )


class TestDisconnectedGraphs:
    def build_two_islands(self):
        g = DiGraph()
        for i in range(3):
            g.add_edge(i, (i + 1) % 3, 1.0)
            g.add_edge((i + 1) % 3, i, 1.0)
        for i in range(10, 13):
            j = 10 + (i - 9) % 3
            g.add_edge(i, j, 1.0)
            g.add_edge(j, i, 1.0)
        return g

    def test_cross_island_unreachable(self):
        g = self.build_two_islands()
        oracle = DISO(g, transit={1, 11})
        assert oracle.query(0, 12) == INFINITY
        assert oracle.query(12, 0) == INFINITY

    def test_within_island_fine(self):
        g = self.build_two_islands()
        oracle = DISO(g, transit={1, 11})
        assert oracle.query(0, 2) == pytest.approx(1.0)

    def test_bounded_search_stays_on_island(self):
        g = self.build_two_islands()
        result = bounded_dijkstra(g, 0, transit={1})
        assert all(node < 10 for node in result.dist)


class TestTinyGraphs:
    def test_two_node_graph(self):
        g = DiGraph([(0, 1, 2.0), (1, 0, 3.0)])
        oracle = DISO(g, transit={0})
        assert oracle.query(0, 1) == 2.0
        assert oracle.query(1, 0) == 3.0
        assert oracle.query(0, 1, failed={(0, 1)}) == INFINITY

    def test_adiso_two_node_graph(self):
        g = DiGraph([(0, 1, 2.0), (1, 0, 3.0)])
        oracle = ADISO(g, transit={0}, landmarks=[0])
        assert oracle.query(0, 1) == 2.0
        assert oracle.query(1, 0, failed={(1, 0)}) == INFINITY


class TestSparsifyEdgeCases:
    def test_empty_graph(self):
        result = sparsify_graph(DiGraph(), beta=1.5, degree_floor=0)
        assert result.removed == {}
        assert result.removal_ratio == 0.0

    def test_single_edge_graph(self):
        g = DiGraph([(0, 1, 1.0)])
        result = sparsify_graph(g, beta=2.0, degree_floor=0)
        # No alternative path exists; the edge must survive.
        assert result.graph.has_edge(0, 1)

    def test_parallel_paths_all_but_one_removable(self):
        # Three equal 2-hop routes plus direct edges between hubs.
        g = DiGraph()
        for mid in (1, 2, 3):
            g.add_edge(0, mid, 1.0)
            g.add_edge(mid, 4, 1.0)
        g.add_edge(0, 4, 2.0)
        result = sparsify_graph(g, beta=1.0, degree_floor=0)
        # The direct (0, 4) has an exactly-equal witness: removable.
        assert (0, 4) in result.removed


class TestOracleReuseAcrossQueries:
    def test_thousand_mixed_queries_no_drift(self, small_road):
        """A long mixed query stream never corrupts shared state."""
        import random

        oracle = DISO(small_road, tau=3, theta=1.0)
        rng = random.Random(0)
        nodes = sorted(small_road.nodes())
        edges = sorted(small_road.edge_set())
        probes = [
            (0, 143, frozenset({(0, 1)})),
            (50, 100, frozenset()),
        ]
        expected = [oracle.query(s, t, set(f)) for s, t, f in probes]
        for _ in range(300):
            s, t = rng.sample(nodes, 2)
            failed = set(rng.sample(edges, rng.randrange(0, 6)))
            oracle.query(s, t, failed)
        for (s, t, f), want in zip(probes, expected):
            assert oracle.query(s, t, set(f)) == want
