"""The dispatcher: shard query batches across snapshot-mapped workers.

:class:`QueryService` owns a pool of worker processes
(:func:`repro.serving.worker.worker_main`), each of which maps the same
snapshot file read-only.  ``run()`` splits a query batch into
contiguous chunks, deals them round-robin across the pool, and streams
results back over pipes — restoring input order, aggregating per-query
latencies, and keeping per-worker accounting.  A worker that dies
mid-batch is replaced and its outstanding chunks are resubmitted to the
replacement, so one crash costs one chunk of rework, not the run.

The dispatcher itself never loads the oracle: the only artifacts it
touches are the snapshot path (a string) and the query/answer tuples on
the pipes.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from pathlib import Path
from collections.abc import Sequence

from repro.oracle.parallel import latency_percentile
from repro.serving.worker import worker_main
from repro.workload.queries import Query

#: Seconds to wait for a freshly spawned worker to map the snapshot.
_READY_TIMEOUT = 60.0
#: Poll interval while waiting for batch results (liveness checks).
_POLL_SECONDS = 0.5


@dataclass
class WorkerStats:
    """Accounting for one worker slot across a ``run()`` call."""

    index: int
    pid: int = 0
    queries: int = 0
    batches: int = 0
    busy_seconds: float = 0.0
    load_seconds: float = 0.0
    restarts: int = 0


@dataclass
class ServeReport:
    """Aggregate outcome of one sharded batch run."""

    answers: list[float]
    latencies: list[float]
    wall_seconds: float
    workers: int
    per_worker: list[WorkerStats] = field(default_factory=list)
    restarts: int = 0

    @property
    def queries_per_second(self) -> float:
        """Aggregate observed throughput."""
        if self.wall_seconds <= 0:
            return float("inf")
        return len(self.answers) / self.wall_seconds

    @property
    def p50_seconds(self) -> float:
        """Median per-query latency (inside-worker, excludes transport)."""
        return latency_percentile(self.latencies, 0.50)

    @property
    def p99_seconds(self) -> float:
        """Nearest-rank 99th percentile per-query latency."""
        return latency_percentile(self.latencies, 0.99)

    def summary(self) -> dict:
        """The comparison row shared with ``ThroughputReport``."""
        return {
            "workers": self.workers,
            "queries": len(self.answers),
            "qps": round(self.queries_per_second, 2),
            "p50_us": round(1e6 * self.p50_seconds, 3),
            "p99_us": round(1e6 * self.p99_seconds, 3),
            "restarts": self.restarts,
        }


class _WorkerHandle:
    """One live worker process plus its pipe and outstanding chunks."""

    __slots__ = ("index", "process", "conn", "outstanding", "load_seconds",
                 "pid")

    def __init__(self, index, process, conn, load_seconds, pid) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.load_seconds = load_seconds
        self.pid = pid
        #: ``{batch_id: (start, queries)}`` sent but not yet answered.
        self.outstanding: dict[int, tuple[int, list]] = {}


def _wire_query(query) -> tuple:
    """Normalize a Query / (s, t, F) triple to the pipe representation."""
    if isinstance(query, Query):
        failed = tuple(query.failed) if query.failed else None
        return (query.source, query.target, failed)
    source, target, failed = query
    return (source, target, tuple(failed) if failed else None)


class QueryService:
    """A process pool serving DISO/ADISO queries from one snapshot.

    Parameters
    ----------
    snapshot_path:
        File written by :func:`repro.oracle.snapshot.save_snapshot`.
        Every worker maps it independently; the OS shares the pages.
    workers:
        Pool size (>= 1).
    start_method:
        ``multiprocessing`` start method; default prefers ``fork``
        (instant worker startup) and falls back to ``spawn``.
    chunk_size:
        Queries per dispatched chunk; default splits each batch into
        roughly four chunks per worker to smooth load imbalance.
    max_restarts:
        Worker replacements tolerated within one ``run()`` before
        giving up with ``RuntimeError``.

    Examples
    --------
    >>> from repro import DISO, road_network, generate_queries
    >>> from repro.oracle.snapshot import save_snapshot
    >>> from repro.serving import QueryService
    >>> g = road_network(8, 8, seed=1)
    >>> path = save_snapshot(DISO(g, tau=3).freeze(), "/tmp/doc.dsosnap")
    >>> with QueryService(path, workers=2) as service:
    ...     report = service.run(generate_queries(g, 6, seed=2))
    >>> len(report.answers)
    6
    """

    def __init__(
        self,
        snapshot_path: str | Path,
        workers: int = 2,
        start_method: str | None = None,
        chunk_size: int | None = None,
        max_restarts: int | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.snapshot_path = str(snapshot_path)
        self.workers = workers
        self.chunk_size = chunk_size
        self.max_restarts = (
            max_restarts if max_restarts is not None else 3 * workers
        )
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._pool: list[_WorkerHandle] = []
        self._restart_counts: list[int] = [0] * workers
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "QueryService":
        """Spawn the pool; blocks until every worker mapped the snapshot."""
        if self._started:
            return self
        self._pool = [self._spawn(index) for index in range(self.workers)]
        self._started = True
        return self

    def stop(self) -> None:
        """Shut the pool down, terminating any unresponsive worker."""
        for handle in self._pool:
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for handle in self._pool:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            handle.conn.close()
        self._pool = []
        self._started = False

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _spawn(self, index: int) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(self.snapshot_path, child_conn, index),
            daemon=True,
            name=f"dso-worker-{index}",
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(_READY_TIMEOUT):
            process.terminate()
            raise RuntimeError(
                f"worker {index} did not become ready within "
                f"{_READY_TIMEOUT:.0f}s"
            )
        message = parent_conn.recv()
        if message[0] == "error":
            process.join(timeout=5.0)
            raise RuntimeError(
                f"worker {index} failed to load snapshot "
                f"{self.snapshot_path!r}: {message[2]}"
            )
        info = message[2]
        return _WorkerHandle(
            index=index,
            process=process,
            conn=parent_conn,
            load_seconds=info.get("load_seconds", 0.0),
            pid=info.get("pid", process.pid or 0),
        )

    def _replace(self, handle: _WorkerHandle) -> _WorkerHandle:
        """Spawn a replacement and re-dispatch the dead worker's chunks."""
        handle.conn.close()
        if handle.process.is_alive():
            handle.process.terminate()
        handle.process.join(timeout=5.0)
        replacement = self._spawn(handle.index)
        self._restart_counts[handle.index] += 1
        for batch_id, (start, chunk) in handle.outstanding.items():
            replacement.outstanding[batch_id] = (start, chunk)
            replacement.conn.send(("batch", batch_id, chunk))
        self._pool[handle.index] = replacement
        return replacement

    @property
    def total_restarts(self) -> int:
        """Worker replacements since ``start()``, across all runs."""
        return sum(self._restart_counts)

    def _ensure_alive(self) -> None:
        """Replace any worker that died while the service was idle."""
        for handle in list(self._pool):
            if not handle.process.is_alive():
                self._replace(handle)

    # ------------------------------------------------------------------
    # Test hook
    # ------------------------------------------------------------------
    def inject_crash(self, worker_index: int) -> None:
        """Ask one worker to die (exercises the replacement path)."""
        self._pool[worker_index].conn.send(("crash",))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def run(
        self, queries: Sequence, chunk_size: int | None = None
    ) -> ServeReport:
        """Answer ``queries`` across the pool; results keep input order.

        ``queries`` may be :class:`~repro.workload.queries.Query`
        objects or plain ``(source, target, failed)`` triples.

        Raises
        ------
        RuntimeError
            If worker replacements exceed ``max_restarts`` during this
            run (e.g. a snapshot that crashes every worker).
        """
        if not self._started:
            self.start()
        self._ensure_alive()
        wire = [_wire_query(query) for query in queries]
        total = len(wire)
        answers: list[float] = [float("nan")] * total
        latencies: list[float] = [0.0] * total
        stats = [
            WorkerStats(
                index=handle.index,
                pid=handle.pid,
                load_seconds=handle.load_seconds,
            )
            for handle in self._pool
        ]
        started = time.perf_counter()
        if total:
            size = chunk_size or self.chunk_size
            if size is None:
                size = max(1, math.ceil(total / (self.workers * 4)))
            pending: dict[int, int] = {}  # batch_id -> worker slot
            batch_id = 0
            for start in range(0, total, size):
                chunk = wire[start : start + size]
                slot = batch_id % self.workers
                handle = self._pool[slot]
                handle.outstanding[batch_id] = (start, chunk)
                handle.conn.send(("batch", batch_id, chunk))
                pending[batch_id] = slot
                batch_id += 1

            restarts_this_run = 0
            while pending:
                conns = {
                    handle.conn: handle
                    for handle in self._pool
                    if handle.outstanding
                }
                ready = connection_wait(list(conns), timeout=_POLL_SECONDS)
                if not ready:
                    # Nothing arrived: check for silent deaths.
                    for handle in list(conns.values()):
                        if not handle.process.is_alive():
                            restarts_this_run += self._check_restart_budget(
                                restarts_this_run
                            )
                            replacement = self._replace(handle)
                            for bid in replacement.outstanding:
                                pending[bid] = replacement.index
                            stats[handle.index].restarts += 1
                    continue
                for conn in ready:
                    handle = conns[conn]
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        restarts_this_run += self._check_restart_budget(
                            restarts_this_run
                        )
                        replacement = self._replace(handle)
                        for bid in replacement.outstanding:
                            pending[bid] = replacement.index
                        stats[handle.index].restarts += 1
                        continue
                    if message[0] == "error":
                        raise RuntimeError(
                            f"worker {handle.index}: {message[2]}"
                        )
                    if message[0] != "result":
                        continue
                    _, bid, _, chunk_answers, chunk_latencies, busy = message
                    start, _chunk = handle.outstanding.pop(bid)
                    pending.pop(bid, None)
                    answers[start : start + len(chunk_answers)] = chunk_answers
                    latencies[start : start + len(chunk_latencies)] = (
                        chunk_latencies
                    )
                    slot_stats = stats[handle.index]
                    slot_stats.queries += len(chunk_answers)
                    slot_stats.batches += 1
                    slot_stats.busy_seconds += busy
        wall = time.perf_counter() - started
        return ServeReport(
            answers=answers,
            latencies=latencies,
            wall_seconds=wall,
            workers=self.workers,
            per_worker=stats,
            restarts=sum(s.restarts for s in stats),
        )

    def _check_restart_budget(self, restarts_this_run: int) -> int:
        """Increment-or-raise: returns 1 while under budget."""
        if restarts_this_run + 1 > self.max_restarts:
            self.stop()
            raise RuntimeError(
                f"exceeded {self.max_restarts} worker restarts in one run; "
                f"snapshot {self.snapshot_path!r} appears to crash workers"
            )
        return 1
