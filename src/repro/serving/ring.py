"""Shared-memory result plane: a preallocated float64 slot ring.

Protocol v2 shipped every answer back over the worker pipe as a pickled
``("result", ...)`` tuple — at 4 workers the dispatcher spent more time
unpickling float lists than the workers spent answering them (the 0.86x
row in ``BENCH_throughput.json``).  Answers are pure floats (the
per-query error sentinel :data:`repro.serving.worker.QUERY_ERROR` is
NaN, so even failures fit a float plane), which makes them a perfect
fit for a preallocated ``multiprocessing.shared_memory`` segment:
workers write answers and latencies in place at their chunk's slot and
the pipe carries only a tiny completion record.

Ring layout (DESIGN.md §11)
---------------------------
One ring is created per ``run()`` with exactly one slot per dispatched
chunk — slot ``s`` belongs to the chunk with sequence number ``s`` for
the whole run, so slots are never reassigned and two workers can only
ever race on a slot when re-dispatch hands the *same chunk* to a
replacement, in which case both write identical bytes (answers are
deterministic).  Each slot is ``4 + 2 * capacity`` float64 lanes::

    [epoch, seq, count, busy_seconds,
     answers[0..capacity), latencies[0..capacity)]

Writers fill the payload lanes first and stamp ``(epoch, seq, count)``
last; readers validate the stamp, copy the payload, and validate the
stamp again, so a half-written or stale slot reads as "no result yet"
(``None``) instead of corrupt data.  A fresh segment is zero-filled, and
epochs start at 1, so an untouched slot can never validate.

Lifecycle
---------
The dispatcher creates the ring (``create``), passes its ``spec()``
inside each batch message, and closes **and unlinks** it when the run
finishes — also on every raise path, so an aborted run leaks nothing.
Workers ``attach`` lazily and only ever ``close``; a worker that dies
without closing (an injected crash) merely drops its mapping — the
dispatcher's unlink already removed the name, and the kernel frees the
pages with the process.  Attached segments are deregistered from
``multiprocessing.resource_tracker`` so a worker exit does not destroy
a segment the dispatcher still owns (Python < 3.13 has no
``track=False``).

Everything here is stdlib-only: the serving plane must work on boxes
without NumPy, so the payload crosses via ``memoryview.cast("d")`` and
``array("d", ...)``.
"""

from __future__ import annotations

import itertools
import os
import secrets
from array import array
from multiprocessing import shared_memory

#: float64 lanes per slot before the answers lane starts.
HEADER_FLOATS = 4
#: ``/dev/shm`` name prefix — the leak-scan tests key on it.
NAME_PREFIX = "dso-ring-"

_ring_counter = itertools.count()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without registering it for cleanup.

    An attaching process must not register the segment: under fork the
    tracker is shared with the creator (a later unregister would strip
    the creator's own registration), and under spawn the worker's own
    tracker would unlink the segment when the worker exits — either way
    the creator must stay the sole owner of the name.  Python < 3.13
    has no ``track=False``, so registration is suppressed for the
    duration of the attach (workers attach from a single thread).
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class ResultRing:
    """A fixed-geometry slot ring over one shared-memory segment.

    Parameters
    ----------
    shm:
        The mapped segment.
    slots:
        Number of slots (one per chunk of the owning ``run()``).
    capacity:
        Maximum queries per slot (the run's chunk size).
    owner:
        ``True`` in the creating (dispatcher) process — ``destroy()``
        unlinks; attached rings only ever close.
    """

    __slots__ = ("_shm", "slots", "capacity", "_owner", "_view", "_closed")

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        slots: int,
        capacity: int,
        owner: bool,
    ) -> None:
        self._shm = shm
        self.slots = slots
        self.capacity = capacity
        self._owner = owner
        self._view = memoryview(shm.buf).cast("d")
        self._closed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, slots: int, capacity: int) -> "ResultRing":
        """Allocate a zero-filled ring sized ``slots`` x ``capacity``."""
        if slots < 1 or capacity < 1:
            raise ValueError("slots and capacity must be >= 1")
        name = (
            f"{NAME_PREFIX}{os.getpid()}-{next(_ring_counter)}-"
            f"{secrets.token_hex(2)}"
        )
        size = 8 * slots * (HEADER_FLOATS + 2 * capacity)
        shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        # Pre-fault every page in the creating process: tmpfs hands the
        # segment out as holes, the dispatcher reads each slot exactly
        # once, and a first-touch fault inside the result-harvest path
        # costs more than the read itself.  This memset also *enforces*
        # the zero-fill the stamp protocol relies on rather than
        # assuming it.
        shm.buf[:] = bytes(size)
        return cls(shm, slots, capacity, owner=True)

    @classmethod
    def attach(cls, spec: tuple[str, int, int]) -> "ResultRing":
        """Map an existing ring from its ``spec()`` triple."""
        name, slots, capacity = spec
        shm = _attach_untracked(name)
        return cls(shm, slots, capacity, owner=False)

    def spec(self) -> tuple[str, int, int]:
        """The picklable ``(name, slots, capacity)`` attach handle."""
        return (self._shm.name, self.slots, self.capacity)

    @property
    def name(self) -> str:
        return self._shm.name

    def _base(self, slot: int) -> int:
        if not 0 <= slot < self.slots:
            raise IndexError(f"slot {slot} out of range for {self.slots}")
        return slot * (HEADER_FLOATS + 2 * self.capacity)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def write(
        self,
        slot: int,
        epoch: int,
        seq: int,
        answers,
        latencies,
        busy_seconds: float,
    ) -> None:
        """Fill ``slot``'s payload lanes, then stamp it valid.

        The stamp goes last so a concurrent reader either sees the
        complete payload under a matching stamp or rejects the slot.
        """
        count = len(answers)
        if count > self.capacity:
            raise ValueError(
                f"chunk of {count} exceeds slot capacity {self.capacity}"
            )
        base = self._base(slot)
        view = self._view
        payload = base + HEADER_FLOATS
        if count:
            view[payload : payload + count] = array("d", answers)
            view[
                payload + self.capacity : payload + self.capacity + count
            ] = array("d", latencies)
        view[base + 3] = busy_seconds
        view[base + 2] = float(count)
        view[base + 1] = float(seq)
        view[base] = float(epoch)

    # ------------------------------------------------------------------
    # Dispatcher side
    # ------------------------------------------------------------------
    def read(
        self, slot: int, epoch: int, seq: int, count: int
    ) -> tuple[list[float], list[float], float] | None:
        """Copy ``slot``'s payload if its stamp matches, else ``None``.

        The stamp is checked before and after the copy: a mismatch on
        either side (an unwritten, stale-epoch, or mid-write slot)
        returns ``None`` and the caller treats the result as not yet
        delivered — the deadline/resend machinery takes it from there.
        """
        base = self._base(slot)
        view = self._view
        stamp = [float(epoch), float(seq), float(count)]
        if view[base : base + 3].tolist() != stamp:
            return None
        # Copy the payload through ``array`` over the raw byte buffer:
        # one C memcpy plus C-speed boxing.  Element-wise access on the
        # cast memoryview goes through per-element struct unpacking,
        # which in situ costs more than the pipe plane's unpickle ever
        # did.
        raw = self._shm.buf
        first = 8 * (base + HEADER_FLOATS)
        second = first + 8 * self.capacity
        answer_lane = array("d")
        answer_lane.frombytes(raw[first : first + 8 * count])
        latency_lane = array("d")
        latency_lane.frombytes(raw[second : second + 8 * count])
        answers = answer_lane.tolist()
        latencies = latency_lane.tolist()
        busy = view[base + 3]
        if view[base : base + 3].tolist() != stamp:
            return None
        return answers, latencies, busy

    def read_into(
        self,
        slot: int,
        epoch: int,
        seq: int,
        count: int,
        answers_out: memoryview,
        latencies_out: memoryview,
        start: int,
    ) -> float | None:
        """Copy ``slot``'s payload straight into caller buffers.

        Same stamp protocol as :meth:`read`, but the payload lands in
        ``answers_out[start : start + count]`` (and likewise for
        latencies) as two typed-memoryview copies — no Python floats
        are materialized.  This is the dispatcher's hot path: it keeps
        per-batch result harvesting at memcpy cost and defers boxing to
        one bulk pass at end of run, which a pickled result plane
        cannot do (every pipe payload must be unpickled on arrival).

        Returns the worker's busy-seconds on success, ``None`` when the
        stamp does not match (caller treats the result as lost; a
        partial copy from a failed attempt is overwritten when the
        re-sent chunk is harvested — slots are chunk-deterministic).
        """
        base = self._base(slot)
        view = self._view
        stamp = [float(epoch), float(seq), float(count)]
        if view[base : base + 3].tolist() != stamp:
            return None
        payload = base + HEADER_FLOATS
        answers_out[start : start + count] = view[payload : payload + count]
        latencies_out[start : start + count] = view[
            payload + self.capacity : payload + self.capacity + count
        ]
        busy = view[base + 3]
        if view[base : base + 3].tolist() != stamp:
            return None
        return busy

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._view.release()
        self._shm.close()

    def destroy(self) -> None:
        """Close and, when owner, unlink the segment (idempotent)."""
        self.close()
        if self._owner:
            self._owner = False
            try:
                self._shm.unlink()
            except FileNotFoundError:  # dsolint: disable=DSO403 -- double-destroy race: the name is already gone, which is the goal state
                pass
