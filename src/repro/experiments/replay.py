"""Replay experiment: the two architectures under a live failure feed.

The paper's Motivation section argues that a fully dynamic distance
oracle must stall queries while it applies every failure *and* every
recovery, even when most of them are irrelevant to any query — while a
distance sensitivity oracle simply passes the currently-active failure
set per query and never updates.

This experiment replays a temporal failure scenario
(:mod:`repro.workload.scenarios`) against both designs and accounts for
*all* the work each one does over the scenario:

* **DSO (DISO)**: per query, answer with the active failure set; zero
  work on failure/recovery events;
* **FDD (FDDO-style)**: per *event*, update the landmark trees (the
  update-then-answer regime; recoveries modelled at equal cost as a
  fresh update), plus the (cheap) per-query estimates.

Output: total/latency accounting and the break-even query:event ratio.
"""

from __future__ import annotations

import time

from repro.baselines.fddo import FDDOOracle
from repro.experiments.report import render_table
from repro.oracle.diso import DISO
from repro.workload.datasets import DATASETS, load_dataset
from repro.workload.queries import generate_queries
from repro.workload.scenarios import (
    generate_failure_schedule,
    sample_query_times,
)


def run_replay(
    dataset: str = "NY",
    scale: float = 0.5,
    duration: float = 60.0,
    failures_per_unit: float = 0.5,
    mean_downtime: float = 8.0,
    query_count: int = 30,
    seed: int = 7,
    fddo_landmarks: int = 12,
) -> dict[str, object]:
    """Replay one scenario through both architectures."""
    spec = DATASETS[dataset]
    graph = load_dataset(dataset, scale=scale, seed=seed)
    schedule = generate_failure_schedule(
        graph,
        duration=duration,
        failures_per_unit=failures_per_unit,
        mean_downtime=mean_downtime,
        seed=seed,
    )
    query_times = sample_query_times(query_count, duration, seed=seed + 1)
    # Endpoint pairs reused across both systems.
    pairs = [
        (q.source, q.target)
        for q in generate_queries(
            graph, query_count, f_gen=0, p=0.0, seed=seed + 2
        )
    ]

    diso = DISO(graph, tau=spec.tau_diso, theta=spec.theta)
    fddo = FDDOOracle(graph, num_landmarks=fddo_landmarks, seed=seed)

    # --- DSO side: per-query work only -------------------------------
    dso_query_seconds = 0.0
    dso_answers: list[float] = []
    for moment, (s, t) in zip(query_times, pairs):
        active = schedule.active_at(moment)
        started = time.perf_counter()
        dso_answers.append(diso.query(s, t, set(active)))
        dso_query_seconds += time.perf_counter() - started

    # --- FDD side: per-event updates + per-query estimates ------------
    from repro.pathing.dynamic_spt import apply_failures

    fdd_update_seconds = 0.0
    fdd_query_seconds = 0.0
    fdd_answers: list[float] = []
    event_index = 0
    events = schedule.events
    reverse_graph = fddo._reverse_graph
    for moment, (s, t) in zip(query_times, pairs):
        # Apply every event up to this query's arrival (the stalls).
        while event_index < len(events) and events[event_index].time <= moment:
            event = events[event_index]
            event_index += 1
            started = time.perf_counter()
            if event.kind == "fail":
                failed = {event.edge}
                for tree in fddo.forward_trees:
                    apply_failures(graph, tree, failed)
                reversed_failed = {(event.edge[1], event.edge[0])}
                for tree in fddo.backward_trees:
                    apply_failures(reverse_graph, tree, reversed_failed)
            else:
                # Recovery: the oracle must re-incorporate the edge; the
                # standard strategy re-runs the affected landmark
                # searches.  Model it as a rebuild of the trees whose
                # root distances could improve (conservatively: all).
                from repro.pathing.dijkstra import shortest_path_tree

                fddo.forward_trees = [
                    shortest_path_tree(graph, root)
                    for root in fddo.landmark_nodes
                ]
                fddo.backward_trees = [
                    shortest_path_tree(reverse_graph, root)
                    for root in fddo.landmark_nodes
                ]
            fdd_update_seconds += time.perf_counter() - started
        started = time.perf_counter()
        fdd_answers.append(fddo._estimate(s, t))
        fdd_query_seconds += time.perf_counter() - started

    return {
        "dataset": dataset,
        "events": schedule.changes(),
        "peak_failures": schedule.peak_failures(),
        "queries": query_count,
        "dso_query_seconds": dso_query_seconds,
        "dso_total_seconds": dso_query_seconds,
        "fdd_update_seconds": fdd_update_seconds,
        "fdd_query_seconds": fdd_query_seconds,
        "fdd_total_seconds": fdd_update_seconds + fdd_query_seconds,
    }


def format_replay(data: dict[str, object]) -> str:
    """Render the replay accounting."""
    rows = [
        {
            "system": "DSO (DISO)",
            "updates": "0.000",
            "queries": f"{data['dso_query_seconds']:.3f}",
            "total": f"{data['dso_total_seconds']:.3f}",
        },
        {
            "system": "FDD (FDDO)",
            "updates": f"{data['fdd_update_seconds']:.3f}",
            "queries": f"{data['fdd_query_seconds']:.3f}",
            "total": f"{data['fdd_total_seconds']:.3f}",
        },
    ]
    return render_table(
        rows,
        columns=[
            ("system", "System"),
            ("updates", "Update s"),
            ("queries", "Query s"),
            ("total", "Total s"),
        ],
        title=(
            f"Replay ({data['dataset']}): {data['events']} failure/recovery "
            f"events, {data['queries']} queries, peak "
            f"{data['peak_failures']} concurrent failures"
        ),
    )
