"""Landmark-based lower bounds (Section 5.2, Goldberg & Harrelson [31]).

For a landmark set ``L`` the table stores, per landmark ``x``, the
outbound distances ``d(x, .)`` and inbound distances ``d(., x)`` on the
failure-free graph.  The triangle inequality then gives the lower bound

    h(u, v) = max over x in L of max(d(x, u) - d(x, v), d(u, x) - d(v, x))

on ``d(u, v)``, which — because edge deletions only lengthen shortest
paths — is also a valid lower bound on ``d(u, v, F)`` for any failed
edge set ``F``.  That observation is what lets ADISO reuse a static
landmark table under arbitrary failures without ever updating it.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.graph.digraph import DiGraph
from repro.pathing.dijkstra import dijkstra, reverse_dijkstra
from repro.pathing.spt import INFINITY


class LandmarkTable:
    """Precomputed landmark distances and the ALT lower bound ``h``.

    Parameters
    ----------
    graph:
        The failure-free input graph.
    landmarks:
        The selected landmark nodes.

    Notes
    -----
    Space is ``O(N_L * n)`` (two distance maps per landmark) and
    preprocessing is ``O(N_L (m + n log n))`` — the figures quoted in the
    paper's Section 5.2 complexity discussion.
    """

    __slots__ = ("landmarks", "_outbound", "_inbound")

    def __init__(self, graph: DiGraph, landmarks: Iterable[int]) -> None:
        self.landmarks: tuple[int, ...] = tuple(landmarks)
        self._outbound: list[dict[int, float]] = []
        self._inbound: list[dict[int, float]] = []
        for landmark in self.landmarks:
            out_dist, _ = dijkstra(graph, landmark)
            self._outbound.append(out_dist)
            self._inbound.append(reverse_dijkstra(graph, landmark))

    @classmethod
    def from_rows(
        cls,
        landmarks: Iterable[int],
        outbound: Iterable[dict[int, float]],
        inbound: Iterable[dict[int, float]],
    ) -> "LandmarkTable":
        """Assemble a table from precomputed per-landmark distance maps.

        The parallel build plane computes each landmark's Dijkstra pair
        in a worker and ships the maps back as dense shard rows; this
        re-hangs them on a table without re-running any search.  The
        maps must hold exactly the finite distances ``__init__`` would
        compute (only values are consulted — never iteration order).
        """
        table = cls.__new__(cls)
        table.landmarks = tuple(landmarks)
        table._outbound = list(outbound)
        table._inbound = list(inbound)
        if len(table._outbound) != len(table.landmarks) or len(
            table._inbound
        ) != len(table.landmarks):
            raise ValueError(
                "from_rows needs one outbound and one inbound map per "
                "landmark"
            )
        return table

    def __len__(self) -> int:
        return len(self.landmarks)

    def lower_bound(self, u: int, v: int) -> float:
        """Return ``h(u, v)``, a lower bound on ``d(u, v)``.

        Clamped to 0 from below (a negative difference carries no
        information).  Unreachable landmark distances contribute nothing.
        """
        if u == v:
            return 0.0
        best = 0.0
        for out_dist, in_dist in zip(self._outbound, self._inbound):
            # Triangle inequality, directed form:
            #   d(x, v) <= d(x, u) + d(u, v)  =>  d(u, v) >= d(x, v) - d(x, u)
            du = out_dist.get(u)
            dv = out_dist.get(v)
            if du is not None and dv is not None:
                diff = dv - du
                if diff > best:
                    best = diff
            #   d(u, x) <= d(u, v) + d(v, x)  =>  d(u, v) >= d(u, x) - d(v, x)
            iu = in_dist.get(u)
            iv = in_dist.get(v)
            if iu is not None and iv is not None:
                diff = iu - iv
                if diff > best:
                    best = diff
        return best

    def landmark_bound(self, landmark_index: int, u: int, v: int) -> float:
        """Return ``l_x(u, v)`` for the landmark at ``landmark_index``.

        The per-landmark triangle bound, written in the admissible
        directed form ``max{d(x, v) - d(x, u), d(u, x) - d(v, x)}`` (the
        paper's Section 5.2 states the terms with the operands swapped,
        which would bound ``d(v, u)``; we use the orientation that is a
        valid lower bound on ``d(u, v)``).  This is the term the SLS
        coverage test ``d(u, v) - l_w(u, v) <= alpha * d(u, v)`` uses.
        """
        out_dist = self._outbound[landmark_index]
        in_dist = self._inbound[landmark_index]
        best = 0.0
        du = out_dist.get(u)
        dv = out_dist.get(v)
        if du is not None and dv is not None and dv - du > best:
            best = dv - du
        iu = in_dist.get(u)
        iv = in_dist.get(v)
        if iu is not None and iv is not None and iu - iv > best:
            best = iu - iv
        return best

    def heuristic_to(self, target: int):
        """Return a unary ``h(u) = lower_bound(u, target)`` callable.

        The returned closure pre-fetches the per-landmark target
        distances so the per-node evaluation is a tight loop — this is
        the hot path of both the A* baseline and ADISO.
        """
        target_out: list[float] = []
        target_in: list[float] = []
        for out_dist, in_dist in zip(self._outbound, self._inbound):
            target_out.append(out_dist.get(target, INFINITY))
            target_in.append(in_dist.get(target, INFINITY))
        outbound = self._outbound
        inbound = self._inbound
        count = len(outbound)

        def heuristic(node: int) -> float:
            if node == target:
                return 0.0
            best = 0.0
            for i in range(count):
                # d(x, t) - d(x, u) <= d(u, t)
                to_t = target_out[i]
                if to_t < INFINITY:
                    from_x = outbound[i].get(node)
                    if from_x is not None:
                        diff = to_t - from_x
                        if diff > best:
                            best = diff
                # d(u, x) - d(t, x) <= d(u, t)
                t_to_x = target_in[i]
                if t_to_x < INFINITY:
                    u_to_x = inbound[i].get(node)
                    if u_to_x is not None:
                        diff = u_to_x - t_to_x
                        if diff > best:
                            best = diff
            return best

        return heuristic

    def size_in_entries(self) -> int:
        """Total stored distance entries (for Table 6 index sizing)."""
        return sum(len(d) for d in self._outbound) + sum(
            len(d) for d in self._inbound
        )

    def compile(self, frozen) -> "FrozenLandmarkTable":
        """Compile the table to dense arrays over a CSR snapshot.

        ``frozen`` is a :class:`repro.graph.csr.FrozenGraph` of the same
        graph; the result serves ``h`` lookups by dense node index for
        the frozen query plane.
        """
        return FrozenLandmarkTable(self, frozen)


class FrozenLandmarkTable:
    """Landmark distances as dense arrays, indexed by CSR node index.

    Produces bitwise-identical lower bounds to :class:`LandmarkTable`
    (same landmarks, same evaluation order); unreachable entries are
    stored as ``inf`` and guarded exactly like the dict version's
    missing keys.
    """

    __slots__ = ("landmarks", "_outbound", "_inbound")

    def __init__(self, table: LandmarkTable, frozen) -> None:
        self.landmarks = table.landmarks
        index_of = frozen.index_of
        n = len(frozen.node_ids)

        def densify(dist_map: dict[int, float]) -> list[float]:
            row = [INFINITY] * n
            for label, d in dist_map.items():
                index = index_of.get(label)
                if index is not None:
                    row[index] = d
            return row

        self._outbound = [densify(d) for d in table._outbound]
        self._inbound = [densify(d) for d in table._inbound]

    @classmethod
    def _restore(cls, landmarks, outbound, inbound) -> "FrozenLandmarkTable":
        """Rebuild a table from already-dense rows (snapshot loading).

        ``outbound``/``inbound`` are sequences of per-landmark dense
        rows indexed by CSR node index — lists or zero-copy memoryviews
        over a mapped snapshot; both serve ``h`` lookups identically.
        """
        table = cls.__new__(cls)
        table.landmarks = tuple(landmarks)
        table._outbound = list(outbound)
        table._inbound = list(inbound)
        return table

    def __len__(self) -> int:
        return len(self.landmarks)

    def heuristic_to(self, target: int):
        """Unary ``h(index) = lower_bound(index, target)`` closure.

        ``target`` is a dense index; mirrors
        :meth:`LandmarkTable.heuristic_to` arithmetic exactly.
        """
        outbound = self._outbound
        inbound = self._inbound
        target_out = [row[target] for row in outbound]
        target_in = [row[target] for row in inbound]
        count = len(outbound)

        def heuristic(node: int) -> float:
            if node == target:
                return 0.0
            best = 0.0
            for i in range(count):
                to_t = target_out[i]
                if to_t < INFINITY:
                    from_x = outbound[i][node]
                    if from_x < INFINITY:
                        diff = to_t - from_x
                        if diff > best:
                            best = diff
                t_to_x = target_in[i]
                if t_to_x < INFINITY:
                    u_to_x = inbound[i][node]
                    if u_to_x < INFINITY:
                        diff = u_to_x - t_to_x
                        if diff > best:
                            best = diff
            return best

        return heuristic
