"""The no-stall property: parallel query threads on one shared index.

The paper's central motivation (Sections 1 and 4.2): a distance
sensitivity oracle answers failure queries *without updating its index*,
so concurrent queries never block each other, while a fully dynamic
oracle (FDDO) must update-then-answer-then-rollback, serialising work
and inflating tail latency.

This demo runs the same mixed workload through both designs and reports
per-query latency statistics.

Run with::

    python examples/throughput_no_stall.py
"""

from __future__ import annotations

import threading
import time

from repro import DISO, FDDOOracle, road_network
from repro.workload.queries import generate_queries


def run_threaded(
    oracle,
    queries,
    threads: int = 4,
    serialize: bool = False,
) -> list[float]:
    """Answer the workload from several threads; return latencies (ms).

    ``serialize=True`` models a fully dynamic oracle: because each query
    *mutates* the index (update, answer, rollback), concurrent queries
    must take a write lock — the stalling the paper eliminates.
    """
    latencies: list[float] = []
    lock = threading.Lock()
    index_lock = threading.Lock()
    chunks = [queries[i::threads] for i in range(threads)]

    def worker(chunk) -> None:
        local: list[float] = []
        for query in chunk:
            started = time.perf_counter()
            if serialize:
                with index_lock:
                    oracle.query(query.source, query.target, query.failed)
            else:
                oracle.query(query.source, query.target, query.failed)
            local.append((time.perf_counter() - started) * 1000)
        with lock:
            latencies.extend(local)

    pool = [threading.Thread(target=worker, args=(c,)) for c in chunks]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()
    return latencies


def describe(name: str, latencies: list[float]) -> None:
    ordered = sorted(latencies)
    mean = sum(ordered) / len(ordered)
    p95 = ordered[int(0.95 * (len(ordered) - 1))]
    print(f"  {name:6s} mean {mean:8.2f} ms    p95 {p95:8.2f} ms    "
          f"max {ordered[-1]:8.2f} ms")


def main() -> None:
    graph = road_network(22, 22, seed=9)
    queries = generate_queries(graph, 40, f_gen=4, p=0.002, seed=2)
    print(f"workload: {len(queries)} queries with failures, 4 threads\n")

    diso = DISO(graph, tau=4, theta=1.0)
    fddo = FDDOOracle(graph, num_landmarks=12, seed=1)

    print("per-query latency:")
    describe("DISO", run_threaded(diso, queries))
    describe("FDDO", run_threaded(fddo, queries, serialize=True))

    print(
        "\nDISO answers on an immutable index (lazy recomputation stays\n"
        "on the side), so threads share it freely.  FDDO rebuilds parts\n"
        "of its landmark trees per failure set — the stalling the paper\n"
        "set out to eliminate."
    )


if __name__ == "__main__":
    main()
