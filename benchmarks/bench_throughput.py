"""Bench: process-pool serving throughput over a frozen-index snapshot.

Freezes a DISO over the paper's standard road-network scale, saves the
index as a binary snapshot (:mod:`repro.oracle.snapshot`), and measures
aggregate query throughput three ways:

* sequential — the in-memory frozen oracle answering the batch alone
  (the single-core reference);
* ``QueryService`` at 1, 2, and 4 workers — each worker a separate
  process mapping the same snapshot read-only — under **both** result
  planes (``shm`` ring and ``pipe`` pickle), so the dispatch cost of
  each channel is directly comparable at equal worker counts.

Every pool run first asserts exact answer parity with the sequential
baseline.  Each row serves the batch ``ROUNDS`` times through one
service (qps from the best round, dispatch overhead the median across
rounds — a single run's per-batch decode cost is scheduler-noise-bound
on small chunk counts) and records its ``result_plane``, the
dispatcher-side ``dispatch_overhead_us`` per accepted batch (unpickle
plus ring memcpy plus splice; the OS wait for the pipe is excluded)
and ``pipe_bytes_per_batch`` (the pickled result traffic that actually
crossed the pipe) — the shm rows carry only tiny completion records
where the pipe rows carry the full answer payload.
Results merge into the repo-root ``BENCH_throughput.json``, where
``merge_json`` stamps ``git_rev`` + ``cpu_count`` into every entry
centrally; ``cpu_count`` matters here because process-level speed-up is
physically bounded by the cores actually present — on a single-core
container the 4-worker row documents dispatch overhead, not scaling.

Standalone usage::

    PYTHONPATH=src:benchmarks python benchmarks/bench_throughput.py
    PYTHONPATH=src:benchmarks python benchmarks/bench_throughput.py --smoke

``--smoke`` serves a tiny graph with 2 workers only — a CI-sized
end-to-end check of snapshot, worker bootstrap, sharding, and parity
(no files written, no speedup asserted).
"""

from __future__ import annotations

import argparse
import os
import statistics
import tempfile
import time
from pathlib import Path

from repro.graph.generators import grid_network, road_network, scale_free_network
from repro.oracle.diso import DISO
from repro.oracle.parallel import latency_percentile
from repro.oracle.snapshot import save_snapshot, snapshot_info
from repro.serving import QueryService, ShardedQueryService
from repro.sharding import (
    FrozenOverlay,
    ShardedOracle,
    build_sharded,
    save_sharded_snapshot,
    sharded_snapshot_info,
    stitch_over_borders,
)
from repro.sharding.frozen_overlay import HAVE_NUMPY
from repro.sharding.oracle import INFINITY
from repro.workload.queries import generate_queries, generate_zipf_queries

from bench_util import THROUGHPUT_JSON, merge_json, write_result

SEED = 7
QUERY_COUNT = 600
WORKER_COUNTS = (1, 2, 4)
RESULT_PLANES = ("shm", "pipe")
#: Serve rounds per row: qps is best-of, dispatch overhead the median.
ROUNDS = 5
#: Dispatcher result-cache capacity for the cached zipf rows.
CACHE_SIZE = 4096
HOT_PAIRS = 32

GRAPH_NAME = "road2k"

#: Shard counts for the sharded-serving comparison.
SHARD_COUNTS = (2, 4)
#: Workers per shard for the sharded rows (total = shards * this).
SHARD_WORKER_COUNTS = (1, 2)

#: Graphs for the zipf-skewed serving comparison (name, builder).
ZIPF_GRAPHS = (
    ("road2k", lambda: road_network(48, 48, seed=SEED)),
    ("scalefree1k5", lambda: scale_free_network(1500, seed=SEED)),
)


def build_graph(smoke: bool):
    if smoke:
        return road_network(8, 8, seed=SEED)
    return road_network(48, 48, seed=SEED)


def sequential_row(oracle, batch) -> dict:
    """Time the in-memory frozen oracle answering the batch alone."""
    latencies = []
    answers = []
    started = time.perf_counter()
    for query in batch:
        tick = time.perf_counter()
        answers.append(oracle.query(query.source, query.target, query.failed))
        latencies.append(time.perf_counter() - tick)
    wall = time.perf_counter() - started
    return {
        "answers": answers,
        "qps": round(len(batch) / wall, 2) if wall > 0 else float("inf"),
        "p50_us": round(1e6 * latency_percentile(latencies, 0.50), 3),
        "p99_us": round(1e6 * latency_percentile(latencies, 0.99), 3),
    }


def run(smoke: bool = False, query_count: int | None = None) -> dict:
    """Snapshot a frozen DISO, serve it at each pool size, return rows."""
    graph = build_graph(smoke)
    count = query_count or (20 if smoke else QUERY_COUNT)
    worker_counts = (2,) if smoke else WORKER_COUNTS

    oracle = DISO(graph, tau=4, theta=1.0).freeze()
    batch = generate_queries(graph, count, f_gen=5, p=0.0005, seed=SEED)

    result: dict = {
        "graph": GRAPH_NAME if not smoke else "road-smoke",
        "oracle": oracle.name,
        "queries": count,
        "cpu_count": os.cpu_count(),
    }
    with tempfile.TemporaryDirectory(prefix="dso-bench-") as tmp:
        path = Path(tmp) / "oracle.dsosnap"
        save_snapshot(oracle, path)
        result["snapshot_bytes"] = snapshot_info(path)["file_bytes"]

        seq = sequential_row(oracle, batch)
        expected = seq.pop("answers")
        result["sequential"] = seq
        print(
            f"{'sequential':>12}: qps {seq['qps']:>9.1f}  "
            f"p50 {seq['p50_us']:>7.1f}us  p99 {seq['p99_us']:>7.1f}us"
        )

        result["workers"] = {}
        rounds = 1 if smoke else ROUNDS
        for workers in worker_counts:
            for plane in RESULT_PLANES:
                reports = []
                with QueryService(
                    path, workers=workers, result_plane=plane
                ) as service:
                    for _ in range(rounds):
                        report = service.run(batch)
                        assert report.answers == expected, (
                            f"{workers}-worker {plane} answers diverge "
                            f"from sequential baseline"
                        )
                        assert report.error_count == 0, (
                            f"{workers}-worker {plane} run reported "
                            f"per-query errors on a clean workload: "
                            f"{report.error_indices[:5]}"
                        )
                        reports.append(report)
                best = max(reports, key=lambda r: r.queries_per_second)
                row = best.summary()
                row["rounds"] = rounds
                row["dispatch_overhead_us"] = round(
                    statistics.median(
                        r.dispatch_overhead_us for r in reports
                    ),
                    3,
                )
                row["speedup_vs_sequential"] = round(
                    best.queries_per_second / seq["qps"], 3
                )
                result["workers"][f"{workers}w-{plane}"] = row
                print(
                    f"{workers:>4} wkr {plane:>4}: qps {row['qps']:>9.1f}  "
                    f"p50 {row['p50_us']:>7.1f}us  "
                    f"p99 {row['p99_us']:>7.1f}us  "
                    f"speedup {row['speedup_vs_sequential']:.2f}x  "
                    f"dispatch {row['dispatch_overhead_us']:>7.1f}us  "
                    f"pipe {row['pipe_bytes_per_batch']:>8.1f}B/batch  "
                    f"errors {row['errors']}  restarts {row['restarts']}"
                )
    return result


def _serve_rounds(path, batch, expected, workers, rounds, **knobs):
    """Serve ``batch`` ``rounds`` times through one service; return
    the reports (parity and zero-errors asserted every round)."""
    reports = []
    with QueryService(path, workers=workers, **knobs) as service:
        for _ in range(rounds):
            report = service.run(batch)
            assert report.answers == expected, (
                f"{workers}-worker answers diverge from sequential "
                f"baseline (knobs {knobs})"
            )
            assert report.error_count == 0, (
                f"{workers}-worker run reported per-query errors on a "
                f"clean workload: {report.error_indices[:5]}"
            )
            reports.append(report)
    return reports


def run_zipf(smoke: bool = False, query_count: int | None = None) -> dict:
    """The skewed-workload serving comparison: cached vs uncached.

    For each graph, serves the same seeded zipf batch (repeated pairs
    with recurring failure variants — the commuter workload of the
    paper's Example 1) through a plain dispatcher and through one with
    the result cache + hot-pair precomputation enabled, at each pool
    size.  Warm rounds answer hot keys from the dispatcher dict, so the
    cached qps measures what workload skew is worth end to end.
    """
    count = query_count or (60 if smoke else QUERY_COUNT)
    worker_counts = (2,) if smoke else WORKER_COUNTS
    rounds = 2 if smoke else ROUNDS
    graphs = (
        (("road-smoke", lambda: road_network(8, 8, seed=SEED)),)
        if smoke
        else ZIPF_GRAPHS
    )

    results: dict = {}
    for name, build in graphs:
        graph = build()
        oracle = DISO(graph, tau=4, theta=1.0).freeze()
        batch = generate_zipf_queries(graph, count, seed=SEED)
        unique = {(q.source, q.target, q.failed) for q in batch}
        result: dict = {
            "graph": name,
            "oracle": oracle.name,
            "workload": "zipf",
            "queries": count,
            "unique_keys": len(unique),
            "cache_size": CACHE_SIZE,
            "hot_pairs": HOT_PAIRS,
            "rounds": rounds,
            "cpu_count": os.cpu_count(),
        }
        with tempfile.TemporaryDirectory(prefix="dso-bench-") as tmp:
            path = Path(tmp) / "oracle.dsosnap"
            save_snapshot(oracle, path)
            seq = sequential_row(oracle, batch)
            expected = seq.pop("answers")
            result["sequential"] = seq
            result["workers"] = {}
            for workers in worker_counts:
                plain = _serve_rounds(
                    path, batch, expected, workers, rounds
                )
                cached = _serve_rounds(
                    path, batch, expected, workers, rounds,
                    cache_size=CACHE_SIZE, hot_pairs=HOT_PAIRS,
                )
                best_plain = max(
                    plain, key=lambda r: r.queries_per_second
                )
                best_cached = max(
                    cached, key=lambda r: r.queries_per_second
                )
                uncached_row = best_plain.summary()
                cached_row = best_cached.summary()
                # The warm ratio is the steady-state number; the cold
                # (first-round) ratio shows what within-batch dedup
                # alone buys before any entry is reused across runs.
                cached_row["cold_hit_ratio"] = round(
                    cached[0].cache_hit_ratio, 3
                )
                cached_row["speedup_vs_uncached"] = round(
                    best_cached.queries_per_second
                    / best_plain.queries_per_second,
                    3,
                )
                result["workers"][f"{workers}w"] = {
                    "uncached": uncached_row,
                    "cached": cached_row,
                }
                print(
                    f"{name:>14} {workers} wkr: "
                    f"uncached {uncached_row['qps']:>9.1f} qps  "
                    f"cached {cached_row['qps']:>11.1f} qps  "
                    f"({cached_row['speedup_vs_uncached']:.2f}x, "
                    f"hit ratio {cached_row['cache_hit_ratio']:.3f}, "
                    f"cold {cached_row['cold_hit_ratio']:.3f})"
                )
        results[name] = result
    return results


def run_sharded(smoke: bool = False, query_count: int | None = None) -> dict:
    """The sharded serving plane: K per-shard pools plus stitching.

    Serves the same batch through :class:`ShardedQueryService` at each
    ``(workers_per_shard, shards)`` combination — on **both** stitch
    planes when NumPy is available — asserting *bitwise* answer parity
    with the sequential unsharded oracle every round on every plane.
    The graph is a unit-weight grid so float addition is exact and the
    stitched sums cannot drift.  Each row keeps its PR 8 key and is the
    default (frozen) plane's best round, now including ``stitch_us``,
    ``closure_hits``, and the same-/cross-shard latency split from
    ``summary()``; ``scalar_stitch_us`` carries the scalar plane's cost
    for the same batch so the dispatcher-side win is visible per row.
    """
    rows_cols = 8 if smoke else 20
    graph = grid_network(rows_cols, rows_cols)
    graph_name = f"grid{rows_cols}x{rows_cols}" + ("-smoke" if smoke else "")
    count = query_count or (20 if smoke else QUERY_COUNT)
    worker_counts = (1,) if smoke else SHARD_WORKER_COUNTS
    shard_counts = (2,) if smoke else SHARD_COUNTS
    rounds = 1 if smoke else ROUNDS

    oracle = DISO(graph, tau=4, theta=1.0).freeze()
    batch = generate_queries(graph, count, f_gen=5, p=0.0005, seed=SEED)
    seq = sequential_row(oracle, batch)
    expected = seq.pop("answers")

    result: dict = {
        "graph": graph_name,
        "oracle": "DISO-SHARD",
        "queries": count,
        "rounds": rounds,
        "cpu_count": os.cpu_count(),
        "sequential": seq,
        "workers": {},
    }
    with tempfile.TemporaryDirectory(prefix="dso-bench-shard-") as tmp:
        for shards in shard_counts:
            build = build_sharded(graph, shards, method="metis", seed=SEED)
            target = save_sharded_snapshot(
                build, Path(tmp) / f"sharded-{shards}"
            )
            info = sharded_snapshot_info(target)
            shard_bytes = info["shard_file_bytes"]
            planes = ("frozen", "scalar") if HAVE_NUMPY else ("scalar",)
            for workers in worker_counts:
                best_by_plane = {}
                for plane in planes:
                    reports = []
                    with ShardedQueryService(
                        target, workers_per_shard=workers,
                        stitch_plane=plane,
                    ) as service:
                        for _ in range(rounds):
                            report = service.run(batch)
                            assert report.answers == expected, (
                                f"{workers}w-{shards}shard {plane} "
                                f"answers diverge from the unsharded "
                                f"sequential baseline"
                            )
                            assert report.error_count == 0, (
                                f"{workers}w-{shards}shard {plane} run "
                                f"reported per-query errors on a clean "
                                f"workload: {report.error_indices[:5]}"
                            )
                            reports.append(report)
                    best_by_plane[plane] = max(
                        reports, key=lambda r: r.queries_per_second
                    )
                best = best_by_plane[planes[0]]
                row = best.summary()
                row["rounds"] = rounds
                row["shard_loads"] = list(best.shard_loads)
                row["per_shard_bytes"] = shard_bytes
                row["manifest_bytes"] = info["manifest_bytes"]
                row["speedup_vs_sequential"] = round(
                    best.queries_per_second / seq["qps"], 3
                )
                if "scalar" in best_by_plane:
                    row["scalar_stitch_us"] = round(
                        best_by_plane["scalar"].stitch_us, 3
                    )
                result["workers"][f"{workers}w-{shards}shard"] = row
                print(
                    f"{workers:>2}w x {shards} shards ({row['stitch_plane']}): "
                    f"qps {row['qps']:>9.1f}  "
                    f"p50 {row['p50_us']:>7.1f}us  "
                    f"stitch {row['stitch_us']:>7.1f}us  "
                    f"cross {row['cross_shard_ratio']:.3f}  "
                    f"closure {row['closure_hits']}  "
                    f"loads {row['shard_loads']}  "
                    f"errors {row['errors']}"
                )
    return result


def run_stitch_micro(smoke: bool = False, query_count: int | None = None) -> dict:
    """Dispatcher-side stitch cost: scalar heap walk vs frozen closure.

    Single-process measurement on the paper's road scale at K=4: for a
    batch of failure-free cross-shard queries the border legs are
    precomputed once, then the per-query *stitch* step alone is timed —
    the scalar multi-source Dijkstra over the overlay versus the frozen
    plane's closure fast path (two leg lookups + one matrix min).  This
    isolates exactly the cost the frozen plane removes; worker leg time
    is identical on both planes and excluded.  Answers are checked with
    a 1e-9 relative tolerance (the closure re-associates float sums, so
    bitwise equality is only guaranteed on exact-weight graphs — the
    sharded parity suite covers that side).  The stamped ``cpu_count``
    carries the usual caveat: on a single-core container the absolute
    times are upper bounds, but both planes pay the same core.
    """
    if not HAVE_NUMPY:
        return {"skipped": "numpy unavailable"}
    rows_cols = 8 if smoke else 48
    shards = 2 if smoke else 4
    graph = road_network(rows_cols, rows_cols, seed=SEED)
    graph_name = f"road{rows_cols}x{rows_cols}"
    count = query_count or (20 if smoke else 200)

    build = build_sharded(graph, shards, method="metis", seed=SEED)
    oracle = ShardedOracle.from_build(build)
    overlay = oracle.overlay
    frozen = FrozenOverlay.from_overlay(overlay, closure=build.border_closure)
    adjacency = overlay.adjacency(None, None)

    # Failure-free cross-shard queries with both leg sets precomputed.
    batch = generate_queries(
        graph, 4 * count, f_gen=0, p=0.0, seed=SEED
    )
    prepared = []
    for query in batch:
        shard_s = overlay.assignment[query.source]
        shard_t = overlay.assignment[query.target]
        if shard_s == shard_t:
            continue
        oracle_s = oracle.shard_oracles[shard_s]
        oracle_t = oracle.shard_oracles[shard_t]
        sources = [
            (border, oracle_s.query(query.source, border, frozenset()))
            for border in overlay.shard_borders[shard_s]
        ]
        targets = [
            (border, oracle_t.query(border, query.target, frozenset()))
            for border in overlay.shard_borders[shard_t]
        ]
        prepared.append((sources, targets))
        if len(prepared) >= count:
            break

    def timed(stitch_one):
        values = []
        costs = []
        for sources, targets in prepared:
            tick = time.perf_counter()
            values.append(stitch_one(sources, targets))
            costs.append(time.perf_counter() - tick)
        return values, costs

    scalar_values, scalar_costs = timed(
        lambda sources, targets: stitch_over_borders(
            sources,
            {b: v for b, v in targets if v < INFINITY},
            adjacency,
            INFINITY,
        )
    )
    closure_values, closure_costs = timed(
        lambda sources, targets: frozen.closure_answer(
            sources, targets, INFINITY
        )
    )
    import math

    for scalar, closure in zip(scalar_values, closure_values):
        assert (scalar == closure) or math.isclose(
            scalar, closure, rel_tol=1e-9
        ), f"closure stitch diverged: {scalar!r} vs {closure!r}"

    scalar_us = 1e6 * statistics.median(scalar_costs)
    closure_us = 1e6 * statistics.median(closure_costs)
    result = {
        "graph": graph_name,
        "shards": shards,
        "borders": frozen.num_borders,
        "queries": len(prepared),
        "cpu_count": os.cpu_count(),
        "scalar_stitch_us_p50": round(scalar_us, 3),
        "closure_stitch_us_p50": round(closure_us, 3),
        "closure_speedup": round(scalar_us / closure_us, 3)
        if closure_us > 0
        else float("inf"),
        "caveat": (
            "single-process stitch-step-only measurement; worker leg "
            "time identical on both planes and excluded; absolute "
            "times are 1-core-container bound"
        ),
    }
    print(
        f"stitch micro ({graph_name}, {shards} shards, "
        f"{frozen.num_borders} borders): scalar "
        f"{result['scalar_stitch_us_p50']:.1f}us vs closure "
        f"{result['closure_stitch_us_p50']:.1f}us -> "
        f"{result['closure_speedup']:.2f}x"
    )
    return result


def format_stitch_micro(result: dict) -> str:
    if "skipped" in result:
        return f"Stitch micro: skipped ({result['skipped']})"
    return (
        "Frozen-closure stitch vs scalar heap walk "
        "(failure-free cross-shard, stitch step only)\n"
        f"graph={result['graph']}  shards={result['shards']}  "
        f"borders={result['borders']}  queries={result['queries']}  "
        f"cpu_count={result['cpu_count']}\n"
        f"scalar p50 {result['scalar_stitch_us_p50']:.1f}us  "
        f"closure p50 {result['closure_stitch_us_p50']:.1f}us  "
        f"speedup {result['closure_speedup']:.2f}x"
    )


def format_sharded_result(result: dict) -> str:
    lines = [
        "Sharded serving: per-shard pools + border stitching",
        f"graph={result['graph']}  queries={result['queries']}  "
        f"rounds(best-of)={result['rounds']}  "
        f"cpu_count={result['cpu_count']}  "
        f"sequential qps={result['sequential']['qps']:.1f}",
        f"{'backend':>12} {'plane':>7} {'qps':>10} {'p50 us':>9} "
        f"{'speedup':>8} {'stitch us':>10} {'scalar us':>10} "
        f"{'closure':>8} {'cross':>6} {'manifest B':>11}",
    ]
    for backend, row in result["workers"].items():
        scalar_us = row.get("scalar_stitch_us")
        lines.append(
            f"{backend:>12} {row['stitch_plane']:>7} "
            f"{row['qps']:>10.1f} {row['p50_us']:>9.1f} "
            f"{row['speedup_vs_sequential']:>8.2f} "
            f"{row['stitch_us']:>10.1f} "
            f"{scalar_us if scalar_us is not None else '-':>10} "
            f"{row['closure_hits']:>8} "
            f"{row['cross_shard_ratio']:>6.3f} "
            f"{row['manifest_bytes']:>11}"
        )
    return "\n".join(lines)


def format_zipf_result(results: dict) -> str:
    lines = [
        "Zipf-skewed serving: dispatcher cache + hot pairs vs plain",
        f"queries={next(iter(results.values()))['queries']}  "
        f"cache={CACHE_SIZE}  hot_pairs={HOT_PAIRS}  rounds(best-of)="
        f"{next(iter(results.values()))['rounds']}",
        f"{'graph':>14} {'workers':>8} {'uncached qps':>13} "
        f"{'cached qps':>12} {'speedup':>8} {'hit ratio':>10} "
        f"{'cold ratio':>11} {'shed':>5}",
    ]
    for name, result in results.items():
        for backend, row in result["workers"].items():
            cached = row["cached"]
            lines.append(
                f"{name:>14} {backend:>8} "
                f"{row['uncached']['qps']:>13.1f} "
                f"{cached['qps']:>12.1f} "
                f"{cached['speedup_vs_uncached']:>8.2f} "
                f"{cached['cache_hit_ratio']:>10.3f} "
                f"{cached['cold_hit_ratio']:>11.3f} "
                f"{cached['shed_rate']:>5.2f}"
            )
    return "\n".join(lines)


def format_result(result: dict) -> str:
    lines = [
        "Process-pool serving throughput over a frozen-index snapshot",
        f"graph={result['graph']}  oracle={result['oracle']}  "
        f"queries={result['queries']}  cpu_count={result['cpu_count']}  "
        f"snapshot={result['snapshot_bytes']}B",
        f"{'backend':>12} {'qps':>10} {'p50 us':>9} {'p99 us':>9} "
        f"{'speedup':>8} {'dispatch us':>12} {'pipe B/batch':>13}",
        f"{'sequential':>12} {result['sequential']['qps']:>10.1f} "
        f"{result['sequential']['p50_us']:>9.1f} "
        f"{result['sequential']['p99_us']:>9.1f} {'1.00':>8} "
        f"{'-':>12} {'-':>13}",
    ]
    for backend, row in result["workers"].items():
        lines.append(
            f"{backend:>12} {row['qps']:>10.1f} "
            f"{row['p50_us']:>9.1f} {row['p99_us']:>9.1f} "
            f"{row['speedup_vs_sequential']:>8.2f} "
            f"{row['dispatch_overhead_us']:>12.1f} "
            f"{row['pipe_bytes_per_batch']:>13.1f}"
        )
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny graph, 2 workers only, no files written",
    )
    parser.add_argument("--queries", type=int, default=None)
    args = parser.parse_args()
    result = run(smoke=args.smoke, query_count=args.queries)
    zipf = run_zipf(smoke=args.smoke, query_count=args.queries)
    sharded = run_sharded(smoke=args.smoke, query_count=args.queries)
    micro = run_stitch_micro(smoke=args.smoke, query_count=args.queries)
    if args.smoke:
        # The smoke contract for the caching plane: a skewed workload
        # must actually hit the cache, with zero errors anywhere.
        for graph_result in zipf.values():
            for row in graph_result["workers"].values():
                assert row["cached"]["cache_hit_ratio"] > 0.0, (
                    "zipf smoke run produced no cache hits"
                )
                assert row["cached"]["errors"] == 0
                assert row["uncached"]["errors"] == 0
        # ... and for the sharded plane: bitwise parity already held
        # inside run_sharded; the routing stats must be sane.
        for row in sharded["workers"].values():
            assert row["shards"] >= 2
            assert 0.0 <= row["cross_shard_ratio"] <= 1.0
            assert row["errors"] == 0
            assert row["stitch_us"] >= 0.0
            if HAVE_NUMPY:
                assert row["stitch_plane"] == "frozen"
        if "skipped" not in micro:
            assert micro["closure_speedup"] > 0.0
        print(
            "smoke run OK (parity held, zipf hit the cache, "
            "sharded stitching matched bitwise on both planes)"
        )
        return
    if "skipped" not in micro:
        # The tentpole's acceptance bar: the failure-free closure fast
        # path must at least halve the median cross-shard stitch cost
        # relative to the scalar heap walk at the paper's road scale.
        assert micro["closure_speedup"] >= 2.0, (
            f"closure fast path only {micro['closure_speedup']:.2f}x "
            f"over the scalar stitcher (need >= 2x)"
        )
    write_result("throughput", format_result(result))
    write_result("throughput_zipf", format_zipf_result(zipf))
    write_result("throughput_sharded", format_sharded_result(sharded))
    write_result("throughput_stitch_micro", format_stitch_micro(micro))
    entries = {f"{result['oracle']}@{result['graph']}": result}
    for name, graph_result in zipf.items():
        entries[f"{graph_result['oracle']}@{name}-zipf"] = graph_result
    entries[f"{sharded['oracle']}@{sharded['graph']}"] = sharded
    if "skipped" not in micro:
        entries[f"stitch-micro@{micro['graph']}-{micro['shards']}shard"] = micro
    path = merge_json(entries, THROUGHPUT_JSON)
    print(f"wrote {path}")
    print(format_result(result))
    print(format_zipf_result(zipf))
    print(format_sharded_result(sharded))
    print(format_stitch_micro(micro))


# ----------------------------------------------------------------------
# pytest entry point (small scale; the standalone main is the real run)
# ----------------------------------------------------------------------
def test_throughput_smoke():
    result = run(smoke=True)
    for plane in RESULT_PLANES:
        row = result["workers"][f"2w-{plane}"]
        assert row["queries"] == result["queries"]
        assert row["qps"] > 0.0
        assert row["result_plane"] == plane
        assert row["pipe_bytes_per_batch"] > 0.0
    # The whole point of the shm plane: answers stop crossing the pipe.
    assert (
        result["workers"]["2w-shm"]["pipe_bytes_per_batch"]
        < result["workers"]["2w-pipe"]["pipe_bytes_per_batch"]
    )


def test_zipf_cache_smoke():
    results = run_zipf(smoke=True)
    row = results["road-smoke"]["workers"]["2w"]
    # Skewed traffic must hit the dispatcher cache — already in the
    # cold round (within-batch dedup), fully in the warm best round —
    # and caching must never introduce errors or sheds.
    assert row["cached"]["cache_hit_ratio"] > 0.0
    assert row["cached"]["cold_hit_ratio"] > 0.0
    assert row["cached"]["errors"] == 0
    assert row["cached"]["shed_rate"] == 0.0
    assert row["uncached"]["errors"] == 0
    assert row["uncached"]["cache_hits"] == 0


def test_sharded_smoke():
    result = run_sharded(smoke=True)
    row = result["workers"]["1w-2shard"]
    # Parity with the unsharded oracle is asserted inside run_sharded
    # (bitwise, on both stitch planes — the grid's unit weights make
    # float addition exact); here: the routing stats, per-shard
    # memory, and the stitch-plane stamps must all be present.
    assert row["shards"] == 2
    assert 0.0 <= row["cross_shard_ratio"] <= 1.0
    assert len(row["shard_loads"]) == 2
    assert len(row["per_shard_bytes"]) == 2
    assert all(size > 0 for size in row["per_shard_bytes"].values())
    assert row["manifest_bytes"] > 0
    assert row["errors"] == 0
    assert row["stitch_plane"] in ("scalar", "frozen")
    assert row["stitch_us"] >= 0.0
    assert isinstance(row["latency_split"], dict)
    if HAVE_NUMPY:
        assert row["stitch_plane"] == "frozen"
        assert row["scalar_stitch_us"] >= 0.0


def test_stitch_micro_smoke():
    result = run_stitch_micro(smoke=True)
    if "skipped" in result:
        return  # no numpy: the scalar plane is the only plane
    # No speed bar at smoke scale (5-border overlays fit in the scalar
    # walk's noise floor); the answers must agree and the stamps exist.
    assert result["queries"] > 0
    assert result["scalar_stitch_us_p50"] > 0.0
    assert result["closure_stitch_us_p50"] > 0.0
    assert result["closure_speedup"] > 0.0


if __name__ == "__main__":
    main()
