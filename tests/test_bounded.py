"""Tests for the bounded Dijkstra's algorithm and access nodes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.pathing.bounded import (
    bounded_dijkstra,
    bounded_tree,
    in_access_nodes,
    out_access_nodes,
)
from repro.pathing.dijkstra import dijkstra, shortest_distance
from util import random_failures_from, random_graph


def line_graph() -> DiGraph:
    """0 - 1 - 2 - 3 - 4 bidirectional unit path."""
    g = DiGraph()
    for i in range(4):
        g.add_edge(i, i + 1, 1.0)
        g.add_edge(i + 1, i, 1.0)
    return g


class TestBoundedSearch:
    def test_stops_at_transit_nodes(self):
        g = line_graph()
        result = bounded_dijkstra(g, 0, transit={2})
        # Node 3 and 4 lie beyond transit node 2 — never reached.
        assert 3 not in result.dist
        assert 4 not in result.dist
        assert result.access == {2: 2.0}

    def test_source_transit_is_expanded(self):
        g = line_graph()
        result = bounded_dijkstra(g, 2, transit={2, 4})
        # The search from a transit source explores until other transit.
        assert result.dist[3] == 1.0
        assert result.access == {2: 0.0, 4: 2.0}

    def test_direction_in(self):
        g = DiGraph([(0, 1, 1.0), (1, 2, 1.0)])
        result = bounded_dijkstra(g, 2, transit={0}, direction="in")
        assert result.access == {0: 2.0}
        assert result.dist[1] == 1.0

    def test_invalid_direction_raises(self):
        g = line_graph()
        with pytest.raises(ValueError):
            bounded_dijkstra(g, 0, transit=set(), direction="sideways")

    def test_failed_edges_avoided(self):
        g = line_graph()
        result = bounded_dijkstra(g, 0, transit={4}, failed={(1, 2)})
        assert 2 not in result.dist
        assert result.access == {}

    def test_settled_count(self):
        g = line_graph()
        result = bounded_dijkstra(g, 0, transit={1})
        assert result.settled_count == 2  # 0 and 1

    def test_empty_transit_equals_dijkstra(self, small_road):
        result = bounded_dijkstra(small_road, 0, transit=set())
        dist, _ = dijkstra(small_road, 0)
        assert result.dist == dist


class TestAccessNodes:
    def test_transit_source_is_own_access(self, small_road):
        access = out_access_nodes(small_road, 5, transit={5, 9})
        assert access == {5: 0.0}

    def test_out_access_distances_exact(self, small_road):
        transit = {10, 50, 90, 130}
        access = out_access_nodes(small_road, 0, transit)
        for node, d in access.items():
            # The access distance must be a real distance (>= shortest).
            assert d >= shortest_distance(small_road, 0, node) - 1e-9

    def test_in_access_distances_exact(self, small_road):
        transit = {10, 50, 90, 130}
        access = in_access_nodes(small_road, 0, transit)
        for node, d in access.items():
            assert d >= shortest_distance(small_road, node, 0) - 1e-9

    def test_in_access_for_transit_target(self, small_road):
        assert in_access_nodes(small_road, 7, transit={7}) == {7: 0.0}


class TestBoundedTree:
    def test_tree_matches_search(self, small_road):
        transit = {10, 50, 90, 130}
        tree = bounded_tree(small_road, 10, transit)
        result = bounded_dijkstra(small_road, 10, transit)
        assert tree.dist == result.dist
        tree.check_invariants()

    def test_transit_leaves_are_leaves(self, small_road):
        transit = {10, 50, 90, 130}
        tree = bounded_tree(small_road, 10, transit)
        for node in transit:
            if node in tree and node != 10:
                assert not tree.children(node)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_access_superset_property(seed):
    """A*_out covers the first transit node of every shortest path.

    For every node v whose shortest path from 0 passes a transit node,
    the first transit node on it must appear in A*_out(0) with exactly
    the path prefix distance — the superset property of Section 4.1.1.
    """
    graph = random_graph(seed)
    transit = {3, 7, 11, 19, 23}
    access = out_access_nodes(graph, 0, transit)
    dist, parent = dijkstra(graph, 0)
    for node in graph.nodes():
        if node == 0 or node not in dist:
            continue
        # Walk the shortest path from 0 to node, find first transit hit.
        chain = [node]
        current = node
        while parent[current] is not None:
            current = parent[current]
            chain.append(current)
        chain.reverse()  # starts at 0
        first_transit = next((x for x in chain[1:] if x in transit), None)
        if first_transit is not None:
            assert first_transit in access
            assert access[first_transit] == pytest.approx(
                dist[first_transit]
            )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5000),
    fail_seed=st.integers(min_value=0, max_value=5000),
)
def test_bounded_distances_are_transit_free_shortest(seed, fail_seed):
    """d_hat(s, v, F) equals Dijkstra on the graph minus interior transit.

    The bounded search distance to any settled non-transit node equals
    the true shortest distance in the graph with other transit nodes
    removed (they may only appear as the final node).
    """
    graph = random_graph(seed)
    transit = {5, 10, 15, 20, 25}
    failed = random_failures_from(graph, fail_seed, 5)
    result = bounded_dijkstra(graph, 0, transit, failed)
    # Build the comparison graph: remove interior transit nodes.
    pruned = graph.copy()
    for node in transit:
        if node != 0 and pruned.has_node(node):
            # Keep in-edges (node can be a path end) but cut out-edges.
            for head in list(pruned.successors(node)):
                pruned.remove_edge(node, head)
    expected, _ = dijkstra(pruned, 0, failed=failed)
    for node, d in result.dist.items():
        assert d == pytest.approx(expected[node])
    for node, d in expected.items():
        assert result.dist.get(node, float("inf")) == pytest.approx(d)
