"""Metamorphic tests: answer invariances under input transformations.

Rather than comparing against a reference implementation, these
properties state how the *answer itself* must respond to controlled
changes of the input — a complementary correctness net that would catch
bugs a shared-reference comparison cannot (e.g. a mistake replicated in
both implementations).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.transforms import scale_weights
from repro.oracle.adiso import ADISO
from repro.oracle.diso import DISO
from repro.pathing.dijkstra import shortest_path
from util import random_failures_from, random_graph


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    s=st.integers(min_value=0, max_value=29),
    t=st.integers(min_value=0, max_value=29),
)
def test_irrelevant_failure_does_not_change_answer(seed, s, t):
    """Failing an edge not on any s-t path leaves the answer alone.

    Construction: fail an edge, ask; then additionally fail an edge
    that lies on no shortest path of the already-failed instance *and*
    is not on the witness path — the answer must not increase beyond
    the original (it cannot decrease either: failures only remove
    options).
    """
    graph = random_graph(seed)
    oracle = DISO(graph, tau=2, theta=4.0)
    base_failed = random_failures_from(graph, seed + 1, 4)
    base = oracle.query(s, t, base_failed)
    witness = shortest_path(graph, s, t, base_failed)
    if witness is None:
        return
    witness_edges = set(witness)
    extra = next(
        (
            (a, b)
            for a, b, _ in sorted(graph.edges())
            if (a, b) not in witness_edges and (a, b) not in base_failed
        ),
        None,
    )
    if extra is None:
        return
    with_extra = oracle.query(s, t, base_failed | {extra})
    # The witness survives, so the distance cannot get worse...
    assert with_extra <= base + 1e-9
    # ...and failures never make anything shorter.
    assert with_extra >= base - 1e-9


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    factor=st.floats(min_value=0.1, max_value=10.0),
    s=st.integers(min_value=0, max_value=29),
    t=st.integers(min_value=0, max_value=29),
)
def test_weight_scaling_scales_answers(seed, factor, s, t):
    """d is homogeneous: scaling all weights by c scales d(s,t,F) by c."""
    graph = random_graph(seed)
    scaled = scale_weights(graph, factor)
    failed = random_failures_from(graph, seed + 2, 5)
    original = DISO(graph, tau=2, theta=4.0)
    rescaled = DISO(scaled, transit=original.transit)
    a = original.query(s, t, failed)
    b = rescaled.query(s, t, failed)
    if a == float("inf"):
        assert b == float("inf")
    else:
        assert b == pytest.approx(a * factor, rel=1e-9)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    s=st.integers(min_value=0, max_value=29),
    t=st.integers(min_value=0, max_value=29),
)
def test_disconnected_component_is_inert(seed, s, t):
    """Grafting an unreachable component changes no answer."""
    graph = random_graph(seed)
    augmented = graph.copy()
    # A small ring far away in the id space, unconnected to the rest.
    for i in range(1000, 1005):
        augmented.add_edge(i, 1000 + (i - 999) % 5, 1.0)
    failed = random_failures_from(graph, seed + 3, 5)
    base = DISO(graph, tau=2, theta=4.0)
    bigger = DISO(augmented, tau=2, theta=4.0)
    assert bigger.query(s, t, failed) == pytest.approx(
        base.query(s, t, failed)
    )


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    s=st.integers(min_value=0, max_value=29),
    t=st.integers(min_value=0, max_value=29),
)
def test_failures_are_monotone(seed, s, t):
    """More failures never shorten the distance (F ⊆ F' ⟹ d ≤ d')."""
    graph = random_graph(seed)
    oracle = ADISO(graph, tau=2, theta=4.0, num_landmarks=3, seed=seed)
    small = random_failures_from(graph, seed + 4, 3)
    large = small | random_failures_from(graph, seed + 5, 6)
    assert oracle.query(s, t, small) <= oracle.query(s, t, large) + 1e-9


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    s=st.integers(min_value=0, max_value=29),
    t=st.integers(min_value=0, max_value=29),
)
def test_parallel_cheaper_edge_only_helps(seed, s, t):
    """Adding a strictly better edge never makes any query worse."""
    graph = random_graph(seed)
    base = DISO(graph, tau=2, theta=4.0)
    before = base.query(s, t)
    improved = graph.copy()
    tail, head, weight = next(iter(sorted(improved.edges())))
    improved.set_weight(tail, head, weight / 2)
    after_oracle = DISO(improved, transit=base.transit)
    assert after_oracle.query(s, t) <= before + 1e-9


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_triangle_inequality_of_answers(seed):
    """d(a,c,F) ≤ d(a,b,F) + d(b,c,F) for the oracle's own answers."""
    graph = random_graph(seed)
    oracle = DISO(graph, tau=2, theta=4.0)
    failed = random_failures_from(graph, seed + 6, 5)
    a, b, c = 0, 10, 20
    d_ab = oracle.query(a, b, failed)
    d_bc = oracle.query(b, c, failed)
    d_ac = oracle.query(a, c, failed)
    if d_ab < float("inf") and d_bc < float("inf"):
        assert d_ac <= d_ab + d_bc + 1e-9
