"""Partitioning-based transit node sets (Table 4 competitors).

The paper compares ISC against using the *border nodes* of a graph
partitioning as the transit node set: UNIFORM random partitioning, METIS
[34], and the stochastic partitioner SPA of [17].  A border node is "a
node having a neighbor included in a different partition".

Substitutions (documented in DESIGN.md): METIS is replaced by a
multilevel heavy-edge-matching partitioner with greedy refinement;
SPA by recursive spectral bisection over Fiedler vectors (via scipy when
available, with a deterministic BFS-bisection fallback).  Both optimise
edge cut — the property that determines border-set size — so the Table 4
comparison exercises the same trade-off as the paper's.
"""

from __future__ import annotations

import random
from collections import deque

from repro.exceptions import PartitionError
from repro.graph.digraph import DiGraph


def border_nodes(graph: DiGraph, assignment: dict[int, int]) -> set[int]:
    """Return the border nodes of a partition ``assignment``.

    A node is a border node when any in- or out-neighbour lies in a
    different partition.
    """
    borders: set[int] = set()
    for node in graph.nodes():
        part = assignment[node]
        if any(assignment[other] != part for other in graph.successors(node)):
            borders.add(node)
            continue
        if any(assignment[other] != part for other in graph.predecessors(node)):
            borders.add(node)
    return borders


def _ensure_nonempty(
    assignment: dict[int, int], parts: int
) -> dict[int, int]:
    """Guarantee every part id in ``range(parts)`` owns >= 1 node.

    Every partitioner in this module can otherwise emit empty parts —
    random assignment can miss a part id outright, BFS growing on a
    disconnected graph leaves unreachable seeds starved, and spectral
    bisection stops early on blocks too small to split.  An empty part
    crashes any per-part consumer (a per-shard oracle build gets an
    empty node set), so the invariant is enforced here, in one place.

    Mutates and returns ``assignment``: each empty part is donated one
    node from the currently largest part (ties broken toward the
    smallest part id; the donated node is the largest node id in the
    donor — fully deterministic, no RNG).  When the invariant is
    unsatisfiable (fewer nodes than parts) raises
    :class:`~repro.exceptions.PartitionError` instead of returning a
    partial cover.
    """
    if len(assignment) < parts:
        raise PartitionError(
            f"cannot partition {len(assignment)} node(s) into {parts} "
            f"non-empty parts"
        )
    members: list[list[int]] = [[] for _ in range(parts)]
    for node in sorted(assignment):
        part = assignment[node]
        if not 0 <= part < parts:
            raise PartitionError(
                f"node {node} assigned to part {part}, outside "
                f"range({parts})"
            )
        members[part].append(node)
    for part in range(parts):
        if members[part]:
            continue
        donor = max(range(parts), key=lambda p: (len(members[p]), -p))
        node = members[donor].pop()
        members[part].append(node)
        assignment[node] = part
    return assignment


def uniform_partition(
    graph: DiGraph,
    parts: int,
    seed: int = 0,
) -> dict[int, int]:
    """Assign every node to one of ``parts`` partitions uniformly at random.

    Every part is guaranteed non-empty; raises
    :class:`~repro.exceptions.PartitionError` when the graph has fewer
    nodes than ``parts``.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    rng = random.Random(seed)
    assignment = {node: rng.randrange(parts) for node in graph.nodes()}
    return _ensure_nonempty(assignment, parts)


def edge_cut(graph: DiGraph, assignment: dict[int, int]) -> int:
    """Count edges crossing partition boundaries."""
    return sum(
        1
        for tail, head, _ in graph.edges()
        if assignment[tail] != assignment[head]
    )


# ----------------------------------------------------------------------
# METIS-like multilevel partitioner
# ----------------------------------------------------------------------

def _undirected_neighbors(graph: DiGraph, node: int) -> set[int]:
    neighbors = set(graph.successors(node))
    neighbors.update(graph.predecessors(node))
    neighbors.discard(node)
    return neighbors


def _heavy_edge_matching(graph: DiGraph, rng: random.Random) -> dict[int, int]:
    """Match nodes to heavy-edge partners; return node -> supernode id."""
    matched: dict[int, int] = {}
    order = list(graph.nodes())
    rng.shuffle(order)
    next_super = 0
    for node in order:
        if node in matched:
            continue
        best_partner: int | None = None
        best_weight = -1.0
        for other, weight in graph.successors(node).items():
            if other != node and other not in matched and weight > best_weight:
                best_partner = other
                best_weight = weight
        for other, weight in graph.predecessors(node).items():
            if other != node and other not in matched and weight > best_weight:
                best_partner = other
                best_weight = weight
        matched[node] = next_super
        if best_partner is not None:
            matched[best_partner] = next_super
        next_super += 1
    return matched


def _coarsen(graph: DiGraph, mapping: dict[int, int]) -> DiGraph:
    coarse = DiGraph()
    coarse.add_nodes(set(mapping.values()))
    for tail, head, weight in graph.edges():
        a, b = mapping[tail], mapping[head]
        if a == b:
            continue
        if coarse.has_edge(a, b):
            coarse.set_weight(a, b, coarse.weight(a, b) + weight)
        else:
            coarse.add_edge(a, b, weight)
    return coarse


def _bfs_grow_partition(
    graph: DiGraph,
    parts: int,
    rng: random.Random,
) -> dict[int, int]:
    """Partition by simultaneous BFS region growing from random seeds."""
    nodes = list(graph.nodes())
    if not nodes:
        return {}
    parts = min(parts, len(nodes))
    seeds = rng.sample(nodes, parts)
    assignment: dict[int, int] = {}
    queues = [deque([seed]) for seed in seeds]
    for part, seed in enumerate(seeds):
        assignment[seed] = part
    active = True
    while active:
        active = False
        for part, queue in enumerate(queues):
            if not queue:
                continue
            node = queue.popleft()
            active = True
            for other in _undirected_neighbors(graph, node):
                if other not in assignment:
                    assignment[other] = part
                    queue.append(other)
    # Isolated leftovers (disconnected nodes) round-robin.
    part = 0
    for node in nodes:
        if node not in assignment:
            assignment[node] = part % parts
            part += 1
    return assignment


def _refine(
    graph: DiGraph,
    assignment: dict[int, int],
    parts: int,
    passes: int = 2,
) -> None:
    """Greedy boundary refinement: move nodes that reduce the edge cut.

    Respects a loose balance constraint (no partition may shrink below
    half or grow beyond double the average size).
    """
    sizes = [0] * parts
    for part in assignment.values():
        sizes[part] += 1
    n = len(assignment)
    low = max(1, n // (2 * parts))
    high = max(low + 1, (2 * n) // parts)
    for _ in range(passes):
        moved = 0
        for node in graph.nodes():
            current = assignment[node]
            if sizes[current] <= low:
                continue
            tally: dict[int, int] = {}
            for other in _undirected_neighbors(graph, node):
                tally[assignment[other]] = tally.get(assignment[other], 0) + 1
            if not tally:
                continue
            best_part, best_links = current, tally.get(current, 0)
            for part, links in tally.items():
                if part == current or sizes[part] >= high:
                    continue
                if links > best_links:
                    best_part, best_links = part, links
            if best_part != current:
                assignment[node] = best_part
                sizes[current] -= 1
                sizes[best_part] += 1
                moved += 1
        if moved == 0:
            break


def metis_like_partition(
    graph: DiGraph,
    parts: int,
    seed: int = 0,
    coarsen_until: int = 200,
) -> dict[int, int]:
    """Multilevel partition in the style of METIS [34].

    Phases: (1) coarsen via heavy-edge matching until the graph has at
    most ``max(coarsen_until, parts * 4)`` supernodes; (2) partition the
    coarsest graph by BFS region growing; (3) project back level by
    level, refining the boundary greedily at each level.

    Every part is guaranteed non-empty; raises
    :class:`~repro.exceptions.PartitionError` when the graph has fewer
    nodes than ``parts``.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    rng = random.Random(seed)
    levels: list[dict[int, int]] = []
    current = graph
    floor = max(coarsen_until, parts * 4)
    while current.number_of_nodes() > floor:
        mapping = _heavy_edge_matching(current, rng)
        if len(set(mapping.values())) >= current.number_of_nodes():
            break  # no progress
        levels.append(mapping)
        current = _coarsen(current, mapping)
    assignment = _bfs_grow_partition(current, parts, rng)
    _refine(current, assignment, parts)
    # Uncoarsen: project assignment through each matching level.
    for mapping, level_graph in zip(
        reversed(levels), reversed(_level_graphs(graph, levels))
    ):
        assignment = {
            node: assignment[supernode] for node, supernode in mapping.items()
        }
        _refine(level_graph, assignment, parts)
    return _ensure_nonempty(assignment, parts)


def _level_graphs(graph: DiGraph, levels: list[dict[int, int]]) -> list[DiGraph]:
    """Return the graph at each coarsening level (finest first)."""
    graphs = [graph]
    current = graph
    for mapping in levels[:-1]:
        current = _coarsen(current, mapping)
        graphs.append(current)
    return graphs


# ----------------------------------------------------------------------
# SPA-like spectral partitioner
# ----------------------------------------------------------------------

def spectral_partition(
    graph: DiGraph,
    parts: int,
    seed: int = 0,
) -> dict[int, int]:
    """Recursive spectral bisection (SPA substitute, see DESIGN.md).

    Splits the node set by the sign structure of the Fiedler vector of
    the symmetrised graph Laplacian, recursing until ``parts`` blocks
    exist.  Falls back to BFS bisection when scipy is unavailable or the
    eigensolver fails (tiny or disconnected blocks).

    Every part is guaranteed non-empty; raises
    :class:`~repro.exceptions.PartitionError` when the graph has fewer
    nodes than ``parts``.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    blocks: list[list[int]] = [list(graph.nodes())]
    rng = random.Random(seed)
    while len(blocks) < parts:
        blocks.sort(key=len, reverse=True)
        largest = blocks.pop(0)
        if len(largest) < 2:
            blocks.append(largest)
            break
        left, right = _bisect(graph, largest, rng)
        if not left or not right:
            blocks.append(largest)
            break
        blocks.extend((left, right))
    assignment: dict[int, int] = {}
    for part, block in enumerate(blocks):
        for node in block:
            assignment[node] = part
    return _ensure_nonempty(assignment, parts)


def _bisect(
    graph: DiGraph,
    block: list[int],
    rng: random.Random,
) -> tuple[list[int], list[int]]:
    # A disconnected block has a degenerate (multiplicity > 1) zero
    # Laplacian eigenvalue: ARPACK returns an arbitrary vector from
    # that eigenspace, so the "Fiedler" split of such a block is not
    # reproducible.  Its natural zero-cut bisection is structural
    # anyway — peel the largest connected component off.
    components = _undirected_components(graph, block)
    if len(components) > 1:
        left = components[0]
        right = [node for component in components[1:] for node in component]
        return left, right
    # Tiny connected blocks (cycles, cliques) routinely have symmetric
    # spectra — degenerate again.  BFS bisection is deterministic and
    # just as good at this size.
    if len(block) < 8:
        return _bfs_bisect(graph, block, rng)
    fiedler = _fiedler_vector(graph, block, rng)
    if fiedler is None:
        return _bfs_bisect(graph, block, rng)
    ranked = sorted(zip(fiedler, block))
    half = len(block) // 2
    left = [node for _, node in ranked[:half]]
    right = [node for _, node in ranked[half:]]
    return left, right


def _undirected_components(
    graph: DiGraph, block: list[int]
) -> list[list[int]]:
    """Connected components of ``block`` (undirected), largest first.

    Fully deterministic: nodes are scanned in sorted order and ties on
    component size break toward the smallest member.
    """
    member = set(block)
    seen: set[int] = set()
    components: list[list[int]] = []
    for start in sorted(block):
        if start in seen:
            continue
        component = [start]
        seen.add(start)
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for other in sorted(_undirected_neighbors(graph, node)):
                if other in member and other not in seen:
                    seen.add(other)
                    component.append(other)
                    queue.append(other)
        components.append(sorted(component))
    components.sort(key=lambda component: (-len(component), component[0]))
    return components


def _fiedler_vector(
    graph: DiGraph, block: list[int], rng: random.Random
) -> list[float] | None:
    """Fiedler vector of the symmetrised Laplacian restricted to ``block``."""
    if len(block) < 4:
        return None
    try:
        import numpy as np
        from scipy.sparse import coo_matrix
        from scipy.sparse.csgraph import laplacian
        from scipy.sparse.linalg import eigsh
    except ImportError:
        return None
    index = {node: i for i, node in enumerate(block)}
    member = set(block)
    rows: list[int] = []
    cols: list[int] = []
    for tail in block:
        for head in graph.successors(tail):
            if head in member and head != tail:
                rows.append(index[tail])
                cols.append(index[head])
                rows.append(index[head])
                cols.append(index[tail])
    if not rows:
        return None
    data = np.ones(len(rows))
    adjacency = coo_matrix(
        (data, (rows, cols)), shape=(len(block), len(block))
    ).tocsr()
    adjacency.sum_duplicates()
    lap = laplacian(adjacency)
    # ARPACK starts from a *random* vector unless v0 is pinned; on a
    # disconnected block the lambda=0 eigenspace is degenerate, so an
    # unpinned start returns a different "Fiedler" vector — and a
    # different cut — every call.  Seed the start from the caller's RNG
    # so equal seeds give bitwise-equal partitions.
    v0 = np.array([rng.random() + 0.1 for _ in range(len(block))])
    try:
        _, vectors = eigsh(
            lap.asfptype(), k=2, which="SM", maxiter=2000, tol=1e-4, v0=v0
        )
    except Exception:  # dsolint: disable=DSO402 -- spectral bisection is best-effort; None routes to the BFS fallback
        return None
    return list(vectors[:, 1])


def _bfs_bisect(
    graph: DiGraph,
    block: list[int],
    rng: random.Random,
) -> tuple[list[int], list[int]]:
    member = set(block)
    start = block[rng.randrange(len(block))]
    visited: list[int] = []
    seen = {start}
    queue = deque([start])
    half = len(block) // 2
    while queue and len(visited) < half:
        node = queue.popleft()
        visited.append(node)
        for other in _undirected_neighbors(graph, node):
            if other in member and other not in seen:
                seen.add(other)
                queue.append(other)
    left = set(visited)
    right = [node for node in block if node not in left]
    return visited, right
