"""Tests for the DHNR-style avoidance baseline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.dhnr import DHNROracle, _ZeroHeuristicTable
from repro.oracle.base import QueryStats
from repro.oracle.diso import DISO
from repro.pathing.dijkstra import shortest_distance
from util import random_failures_from, random_graph


class TestZeroHeuristicTable:
    def test_bounds_are_zero(self):
        table = _ZeroHeuristicTable()
        assert table.lower_bound(1, 2) == 0.0
        assert table.heuristic_to(5)(3) == 0.0
        assert len(table) == 0
        assert table.size_in_entries() == 0

    def test_no_landmarks(self):
        with pytest.raises(IndexError):
            _ZeroHeuristicTable().landmark_bound(0, 1, 2)


class TestDHNR:
    def test_exact_on_fixture(self, small_road):
        oracle = DHNROracle(small_road, tau=3, theta=1.0)
        failed = {(0, 1), (40, 41), (100, 101)}
        for target in (3, 60, 143):
            assert oracle.query(0, target, failed) == pytest.approx(
                shortest_distance(small_road, 0, target, failed)
            )

    def test_zero_index_overhead_over_diso(self, small_road):
        """DHNR carries no landmark data: index equals DISO's."""
        diso = DISO(small_road, tau=3, theta=1.0)
        dhnr = DHNROracle(small_road, transit=diso.transit)
        diso_entries = diso.index_entries()
        dhnr_entries = dict(dhnr.index_entries())
        assert dhnr_entries.pop("landmark_entries") == 0
        assert dhnr_entries == diso_entries

    def test_search_space_grows_with_failures(self, small_road):
        """The paper's §2 prediction: DHNR degenerates toward Dijkstra.

        With more affected transit nodes, DHNR expands more plain graph
        nodes (avoidance), while DISO's graph expansion stays bounded
        by the access searches (repair).
        """
        dhnr = DHNROracle(small_road, tau=3, theta=1.0)
        light = {(0, 1)}
        heavy = random_failures_from(small_road, 3, 40)
        light_result = dhnr.query_detailed(0, 143, light)
        heavy_result = dhnr.query_detailed(0, 143, heavy)
        assert (
            heavy_result.stats.graph_settled
            >= light_result.stats.graph_settled
        )

    def test_never_recomputes_tree_weights(self, small_road):
        """Avoidance policy: the lazy recomputation path is never hit."""
        oracle = DHNROracle(small_road, tau=3, theta=1.0)
        failed = random_failures_from(small_road, 5, 20)
        result = oracle.query_detailed(0, 143, failed)
        assert result.stats.recomputed_nodes == 0


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    fail_seed=st.integers(min_value=0, max_value=10_000),
    s=st.integers(min_value=0, max_value=29),
    t=st.integers(min_value=0, max_value=29),
)
def test_dhnr_exact_random(seed, fail_seed, s, t):
    graph = random_graph(seed)
    oracle = DHNROracle(graph, tau=2, theta=4.0)
    failed = random_failures_from(graph, fail_seed, 8)
    expected = shortest_distance(graph, s, t, failed)
    assert oracle.query(s, t, failed) == pytest.approx(expected)
