"""Conservative, purely syntactic set-typedness inference.

The determinism rules need to know when an iterated expression is an
unordered container.  Whole-program type inference is out of scope for
a linter that must stay dependency-free and fast, so this module infers
set-ness from what is visible in the file alone:

* literal evidence — set displays, set comprehensions,
  ``set(...)``/``frozenset(...)`` calls, set-operator expressions
  (``|``, ``&``, ``-``, ``^``) over set-typed operands, and set-method
  calls (``.union(...)``, ``.intersection(...)``, ...);
* annotation evidence — parameters, ``AnnAssign`` targets, and return
  types annotated ``set[...]`` / ``frozenset[...]`` (including
  ``Optional`` / ``| None`` wrappers);
* local data flow — a name assigned exactly once in its function scope
  from a set-typed expression is set-typed;
* domain knowledge — this is *dsolint*, the repo's own linter, so it
  knows the repo's API: :data:`SET_RETURNING_FUNCTIONS` lists
  functions whose return type is a frozen set by contract
  (e.g. ``normalize_failures``), and :data:`SET_TYPED_ATTRIBUTES`
  lists attributes that are sets on every oracle
  (e.g. ``self.transit``).

Anything the inference is unsure about is treated as *not* a set:
false negatives are acceptable (the parity property tests backstop
them), false positives on every dict or list iteration would bury the
signal.
"""

from __future__ import annotations

import ast

#: Repo functions documented to return a set/frozenset.
SET_RETURNING_FUNCTIONS = frozenset({
    "set",
    "frozenset",
    "normalize_failures",
    "select_transit",
    "select_landmarks",
})

#: Attributes that are sets on every object in this codebase's domain
#: model (oracle.transit is a frozenset of transit nodes, Query.failed
#: is a frozenset of failed edges, ...).
SET_TYPED_ATTRIBUTES = frozenset({"transit", "failed_edges"})

#: ``set`` methods that return a new set.
_SET_METHODS = frozenset({
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "copy",
})

_SET_ANNOTATION_NAMES = frozenset({
    "set",
    "frozenset",
    "Set",
    "FrozenSet",
    "AbstractSet",
    "MutableSet",
})


def _annotation_is_set(node: ast.expr | None) -> bool:
    """True when an annotation expression denotes a set type."""
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATION_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATION_NAMES
    if isinstance(node, ast.Subscript):
        if isinstance(node.value, (ast.Name, ast.Attribute)):
            base = (
                node.value.id
                if isinstance(node.value, ast.Name)
                else node.value.attr
            )
            if base in _SET_ANNOTATION_NAMES:
                return True
            if base == "Optional":
                return _annotation_is_set(node.slice)
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # ``set[int] | frozenset[int] | None`` — set if any arm is.
        return _annotation_is_set(node.left) or _annotation_is_set(node.right)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            parsed = ast.parse(node.value, mode="eval")
        except SyntaxError:
            return False
        return _annotation_is_set(parsed.body)
    return False


class ScopeEnv:
    """Set-typedness of local names in one function (or module) scope."""

    def __init__(self) -> None:
        self.names: dict[str, bool] = {}

    def is_set_name(self, name: str) -> bool:
        return self.names.get(name, False)


def _call_returns_set(node: ast.Call, env: ScopeEnv) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in SET_RETURNING_FUNCTIONS
    if isinstance(func, ast.Attribute):
        if func.attr in SET_RETURNING_FUNCTIONS:
            return True
        if func.attr in _SET_METHODS:
            return is_set_expr(func.value, env)
    return False


def is_set_expr(node: ast.expr, env: ScopeEnv) -> bool:
    """True when ``node`` is, by visible evidence, an unordered set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return _call_returns_set(node, env)
    if isinstance(node, ast.Name):
        return env.is_set_name(node.id)
    if isinstance(node, ast.Attribute):
        return node.attr in SET_TYPED_ATTRIBUTES
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return is_set_expr(node.left, env) or is_set_expr(node.right, env)
    if isinstance(node, ast.IfExp):
        return is_set_expr(node.body, env) or is_set_expr(node.orelse, env)
    return False


def _collect_scope(owner: ast.AST, env: ScopeEnv) -> None:
    """Fill ``env`` from assignments/annotations directly in ``owner``.

    Walks statements but does not descend into nested function or class
    definitions (those get their own scopes).  A name assigned from a
    non-set expression after a set assignment loses its set-ness —
    single forward pass, last writer wins, which matches how the
    determinism rules read code top to bottom.
    """
    if isinstance(owner, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = owner.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            if _annotation_is_set(arg.annotation):
                env.names[arg.arg] = True

    def visit_body(statements: list[ast.stmt]) -> None:
        for statement in statements:
            if isinstance(
                statement,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                continue
            if isinstance(statement, ast.Assign):
                value_is_set = is_set_expr(statement.value, env)
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        env.names[target.id] = value_is_set
            elif isinstance(statement, ast.AnnAssign):
                if isinstance(statement.target, ast.Name):
                    env.names[statement.target.id] = _annotation_is_set(
                        statement.annotation
                    ) or (
                        statement.value is not None
                        and is_set_expr(statement.value, env)
                    )
            for field_name in ("body", "orelse", "finalbody"):
                nested = getattr(statement, field_name, None)
                if isinstance(nested, list):
                    visit_body(nested)
            for handler in getattr(statement, "handlers", None) or []:
                visit_body(handler.body)

    visit_body(getattr(owner, "body", []))


def build_envs(tree: ast.Module) -> dict[ast.AST, ScopeEnv]:
    """Map every scope-owning node (module, functions) to its env."""
    envs: dict[ast.AST, ScopeEnv] = {}
    module_env = ScopeEnv()
    _collect_scope(tree, module_env)
    envs[tree] = module_env
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            env = ScopeEnv()
            _collect_scope(node, env)
            envs[node] = env
    return envs


def enclosing_env(
    node: ast.AST,
    parents: dict[ast.AST, ast.AST],
    envs: dict[ast.AST, ScopeEnv],
    tree: ast.Module,
) -> ScopeEnv:
    """The env of the innermost function scope containing ``node``."""
    current = parents.get(node)
    while current is not None:
        if current in envs and not isinstance(current, ast.ClassDef):
            return envs[current]
        current = parents.get(current)
    return envs[tree]
