"""Road-network scenario: repeated queries with user-specific closures.

The paper's Examples 1-2: a commuter repeatedly asks the same
origin/destination while avoiding different sets of roads (congested
streets, construction, accidents).  A distance sensitivity oracle
answers every variant from one prebuilt index — no per-query index
rebuild, unlike a fully dynamic oracle that must update on every
closure change.

Run with::

    python examples/road_closures.py
"""

from __future__ import annotations

import random
import time

from repro import ADISO, DijkstraOracle, road_network
from repro.workload.queries import essential_failures


def main() -> None:
    graph = road_network(30, 30, seed=7)
    print(f"city: {graph.number_of_nodes()} junctions, "
          f"{graph.number_of_edges()} road segments")

    # ADISO: the landmark-guided oracle — the paper's recommendation
    # for bounded-degree road networks.
    oracle = ADISO(graph, tau=4, theta=1.0, num_landmarks=8, seed=1)
    print(f"preprocessed in {oracle.preprocess_seconds:.2f}s "
          f"({len(oracle.transit)} transit nodes, "
          f"{len(oracle.landmarks)} landmarks)")

    reference = DijkstraOracle(graph)
    home, office = 0, graph.number_of_nodes() - 1
    rng = random.Random(3)

    print(f"\ncommute {home} -> {office}; trying 8 closure scenarios:")
    oracle_time = 0.0
    dijkstra_time = 0.0
    for scenario in range(8):
        # Each scenario closes a few roads on the commuter's usual route
        # plus a couple of random incidents elsewhere in the city.
        closures = essential_failures(graph, home, office, scenario % 4, rng)
        edges = sorted(graph.edge_set())
        closures |= set(rng.sample(edges, 3))

        started = time.perf_counter()
        distance = oracle.query(home, office, closures)
        oracle_time += time.perf_counter() - started

        started = time.perf_counter()
        expected = reference.query(home, office, closures)
        dijkstra_time += time.perf_counter() - started

        assert abs(distance - expected) < 1e-9
        print(f"  scenario {scenario}: {len(closures)} closures, "
              f"travel time {distance:.2f}")

    print(f"\noracle total:   {oracle_time * 1000:.1f} ms")
    print(f"dijkstra total: {dijkstra_time * 1000:.1f} ms")


if __name__ == "__main__":
    main()
