"""Tests for k-path cover algorithms: Algorithm 1, ISC, PRU, HPC."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cover.hpc import (
    hpc_path_cover,
    lr_deg_independent_set,
)
from repro.cover.independent_set import (
    get_independent_set,
    is_independent_set,
    sigma,
)
from repro.cover.isc import isc_path_cover, verify_k_path_cover
from repro.cover.pruning import pru_path_cover
from repro.graph.digraph import DiGraph
from repro.graph.generators import path_network, ring_network, road_network
from util import random_graph


class TestSigma:
    def test_sigma_on_path_middle(self):
        # Path 0-1-2 (bidirectional): eliminating node 1 adds shortcuts
        # (0, 2) and (2, 0): sigma = 2 missing pairs - degree 4 = -2.
        g = path_network(3)
        assert sigma(g, g.copy(), 1) == -2

    def test_sigma_accounts_existing_edges(self):
        # Triangle with all edges present: no missing pairs.
        g = DiGraph()
        for a in range(3):
            for b in range(3):
                if a != b:
                    g.add_edge(a, b, 1.0)
        assert sigma(g, g.copy(), 0) == -4  # 0 missing - deg 4

    def test_sigma_hub_is_expensive(self):
        # Star: center 0 connected both ways to 1..5; eliminating the
        # center adds 5*4 = 20 shortcuts minus degree 10.
        g = DiGraph()
        for i in range(1, 6):
            g.add_edge(0, i, 1.0)
            g.add_edge(i, 0, 1.0)
        assert sigma(g, g.copy(), 0) == 20 - 10


class TestGetIndependentSet:
    def test_result_is_independent(self, small_road):
        result = get_independent_set(small_road, theta=1.0)
        assert is_independent_set(small_road, result.independent_set)

    def test_contracted_excludes_eliminated(self, small_road):
        result = get_independent_set(small_road, theta=1.0)
        for node in result.independent_set:
            assert not result.contracted.has_node(node)

    def test_high_theta_eliminates_more(self, small_social):
        low = get_independent_set(small_social, theta=0.0)
        high = get_independent_set(small_social, theta=64.0)
        assert len(high.independent_set) >= len(low.independent_set)

    def test_negative_theta_can_block_everything(self):
        # On a bidirectional ring, eliminating any node adds 2 shortcuts
        # and removes 4 edge entries: sigma = -2; theta = -3 blocks all.
        g = ring_network(8)
        result = get_independent_set(g, theta=-3.0)
        assert result.independent_set == set()

    def test_contraction_preserves_reachability(self):
        g = path_network(5)
        result = get_independent_set(g, theta=10.0)
        contracted = result.contracted
        # Surviving nodes must still reach each other in the contraction.
        from repro.pathing.dijkstra import dijkstra

        survivors = sorted(contracted.nodes())
        if len(survivors) > 1:
            dist, _ = dijkstra(contracted, survivors[0])
            assert set(dist) == set(survivors)


class TestISC:
    def test_cover_property_small(self, small_road):
        result = isc_path_cover(small_road, tau=2, theta=1.0)
        assert verify_k_path_cover(small_road, result.cover, result.k)

    def test_k_is_two_to_tau(self, small_road):
        assert isc_path_cover(small_road, tau=3, theta=1.0).k == 8

    def test_invalid_tau_raises(self, small_road):
        with pytest.raises(ValueError):
            isc_path_cover(small_road, tau=0)

    def test_more_rounds_smaller_cover(self, small_road):
        one = isc_path_cover(small_road, tau=1, theta=1.0)
        three = isc_path_cover(small_road, tau=3, theta=1.0)
        assert len(three.cover) <= len(one.cover)

    def test_rounds_recorded(self, small_road):
        result = isc_path_cover(small_road, tau=2, theta=1.0)
        assert len(result.rounds) <= 2
        assert all(r >= 0 for r in result.rounds)

    def test_topology_nodes_match_cover(self, small_road):
        result = isc_path_cover(small_road, tau=2, theta=1.0)
        assert set(result.topology.nodes()) == result.cover


class TestPRU:
    def test_cover_property(self, small_road):
        result = pru_path_cover(small_road, k=4)
        assert verify_k_path_cover(small_road, result.cover, 4)

    def test_invalid_k_raises(self, small_road):
        with pytest.raises(ValueError):
            pru_path_cover(small_road, k=1)

    def test_prunes_something_on_line(self):
        g = path_network(10)
        result = pru_path_cover(g, k=4)
        assert len(result.cover) < g.number_of_nodes()
        assert verify_k_path_cover(g, result.cover, 4)

    def test_budget_exhaustion_is_conservative(self, small_social):
        tight = pru_path_cover(small_social, k=8, budget_per_node=1)
        # With no budget nothing can be proven prunable: cover stays big
        # but valid.
        assert verify_k_path_cover(
            small_social, tight.cover, 8, sample_limit=30
        )


class TestHPC:
    def test_lr_deg_is_independent(self, small_road):
        independent = lr_deg_independent_set(small_road)
        assert is_independent_set(small_road, independent)

    def test_cover_property(self, small_road):
        result = hpc_path_cover(small_road, tau=2)
        assert verify_k_path_cover(small_road, result.cover, result.k)

    def test_invalid_tau_raises(self, small_road):
        with pytest.raises(ValueError):
            hpc_path_cover(small_road, tau=0)

    def test_isc_sparser_than_hpc(self, small_road):
        """The paper's core claim: ISC yields fewer overlay edges."""
        from repro.overlay.distance_graph import build_distance_graph

        isc = isc_path_cover(small_road, tau=3, theta=1.0)
        hpc = hpc_path_cover(small_road, tau=3)
        isc_overlay, _ = build_distance_graph(small_road, isc.cover)
        hpc_overlay, _ = build_distance_graph(small_road, hpc.cover)
        assert isc_overlay.num_edges <= hpc_overlay.num_edges


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5000),
    tau=st.integers(min_value=1, max_value=3),
)
def test_isc_cover_property_random(seed, tau):
    """Lemma 3: V_tau is a 2^tau-path cover on random graphs."""
    graph = random_graph(seed, n=20, extra=30)
    result = isc_path_cover(graph, tau=tau, theta=2.0)
    assert verify_k_path_cover(graph, result.cover, result.k)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_hpc_cover_property_random(seed):
    graph = random_graph(seed, n=20, extra=30)
    result = hpc_path_cover(graph, tau=2)
    assert verify_k_path_cover(graph, result.cover, result.k)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_independent_set_never_adjacent_random(seed):
    graph = random_graph(seed, n=25, extra=50)
    result = get_independent_set(graph, theta=4.0)
    assert is_independent_set(graph, result.independent_set)
