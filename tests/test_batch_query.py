"""The vectorized batch plane must agree bitwise with the scalar loop.

``query_many`` / ``answer_many`` are only allowed to be *fast* — every
answer must be the exact float the scalar ``query`` loop returns, for
all four frozen families (DISO, ADISO, DISO-S, ADISO-P), with and
without failure sets, at the edges (empty batch, single query,
unreachable pairs) and under per-query poison (invalid endpoints inside
an otherwise healthy batch).  ADISO has no batched kernel (its merged
A* is query-state dependent) so its batches take the scalar loop — the
parity property is the same either way, which is exactly why the tests
run the one contract across all families.
"""

from __future__ import annotations

import math

import pytest

from repro.graph.digraph import DiGraph
from repro.oracle.adiso import ADISO
from repro.oracle.adiso_p import ADISOPartial
from repro.oracle.base import INFINITY
from repro.oracle.batch import as_query_triple, query_many
from repro.oracle.diso import DISO
from repro.oracle.diso_s import DISOSparse
from repro.workload.queries import Query, generate_queries
from util import random_failures_from, random_graph

FAMILIES = (
    ("DISO", lambda g: DISO(g, tau=3, theta=1.0)),
    ("ADISO", lambda g: ADISO(g, tau=3, theta=1.0, seed=9)),
    ("DISO-S", lambda g: DISOSparse(g, beta=1.5, tau=3, theta=1.0)),
    (
        "ADISO-P",
        lambda g: ADISOPartial(
            g, tau=3, theta=1.0, tau_h=2, num_landmarks=4
        ),
    ),
)


def scalar_answers(frozen, batch) -> list[float]:
    return [frozen.query(q.source, q.target, q.failed) for q in batch]


def assert_bitwise(got: list[float], expected: list[float]) -> None:
    assert len(got) == len(expected)
    for position, (a, b) in enumerate(zip(got, expected)):
        # Bitwise: == for finite/inf values, NaN only equals NaN.
        same = a == b or (math.isnan(a) and math.isnan(b))
        assert same, f"position {position}: {a!r} != {b!r}"


@pytest.mark.parametrize("name,factory", FAMILIES, ids=[f[0] for f in FAMILIES])
@pytest.mark.parametrize("seed", [2, 5])
def test_parity_all_families_with_failures(name, factory, seed):
    graph = random_graph(seed, n=36, extra=80)
    frozen = factory(graph).freeze()
    batch = generate_queries(graph, 18, f_gen=3, p=0.01, seed=seed)
    assert_bitwise(frozen.query_many(batch), scalar_answers(frozen, batch))


@pytest.mark.parametrize("name,factory", FAMILIES, ids=[f[0] for f in FAMILIES])
def test_parity_failure_free(name, factory):
    graph = random_graph(13, n=30, extra=60)
    frozen = factory(graph).freeze()
    batch = generate_queries(graph, 12, f_gen=0, p=0.0, seed=13)
    assert_bitwise(frozen.query_many(batch), scalar_answers(frozen, batch))


def test_empty_batch():
    frozen = DISO(random_graph(3, n=20, extra=30), tau=3).freeze()
    assert frozen.query_many([]) == []
    answers, errors = frozen.answer_many([])
    assert answers == [] and errors == []


def test_single_query_and_same_node():
    graph = random_graph(4, n=24, extra=40)
    frozen = DISO(graph, tau=3).freeze()
    (query,) = generate_queries(graph, 1, f_gen=2, seed=4)
    assert frozen.query_many([query]) == [
        frozen.query(query.source, query.target, query.failed)
    ]
    assert frozen.query_many([(7, 7, None)]) == [0.0]


def two_island_graph() -> DiGraph:
    """Two strongly connected islands with no edges between them."""
    graph = DiGraph()
    for base in (0, 100):
        for i in range(8):
            graph.add_edge(base + i, base + (i + 1) % 8, 1.0 + 0.1 * i)
            graph.add_edge(base + (i + 1) % 8, base + i, 1.5 + 0.1 * i)
    return graph


def test_mixed_reachable_and_unreachable():
    graph = two_island_graph()
    frozen = DISO(graph, tau=2, theta=1.0).freeze()
    batch = [
        (0, 4, None),        # reachable, same island
        (0, 104, None),      # cross-island: unreachable
        (101, 105, {(101, 102)}),  # reachable around a failure
        (105, 3, None),      # cross-island the other way
    ]
    got = frozen.query_many(batch)
    expected = [
        frozen.query(s, t, frozenset(f) if f else None) for s, t, f in batch
    ]
    assert_bitwise(got, expected)
    assert got[1] == INFINITY and got[3] == INFINITY
    assert got[0] < INFINITY and got[2] < INFINITY


def test_diso_s_fallback_parity_on_unreachable():
    # DISO-S answers INF overlay misses on the original graph; the
    # batched plane must take the identical fallback.
    graph = random_graph(21, n=30, extra=40)
    frozen = DISOSparse(graph, beta=1.5, tau=3, theta=1.0).freeze()
    failed = random_failures_from(graph, 8, 12)
    batch = [
        Query(source=s, target=t, failed=frozenset(failed))
        for s in (0, 3, 11)
        for t in (17, 25)
        if s != t
    ]
    assert_bitwise(frozen.query_many(batch), scalar_answers(frozen, batch))


class TestPoisonQueries:
    def test_poison_sentinel_in_right_slot_neighbors_unaffected(self):
        graph = random_graph(6, n=28, extra=50)
        frozen = DISO(graph, tau=3).freeze()
        healthy = generate_queries(graph, 6, f_gen=2, seed=6)
        batch = list(healthy[:3]) + [(0, 10**9, None)] + list(healthy[3:])
        answers, errors = frozen.answer_many(batch)
        assert len(answers) == len(batch)
        assert math.isnan(answers[3])
        assert [position for position, _ in errors] == [3]
        expected = scalar_answers(frozen, healthy)
        assert answers[:3] == expected[:3]
        assert answers[4:] == expected[3:]

    def test_poison_message_matches_scalar_exception(self):
        frozen = DISO(random_graph(7, n=24, extra=40), tau=3).freeze()
        _, errors = frozen.answer_many([(0, -5, None)])
        with pytest.raises(Exception) as caught:
            frozen.query(0, -5)
        assert errors == [
            (0, f"{type(caught.value).__name__}: {caught.value}")
        ]

    def test_query_many_raises_first_failure(self):
        frozen = DISO(random_graph(8, n=24, extra=40), tau=3).freeze()
        with pytest.raises(Exception):
            frozen.query_many([(1, 2, None), (0, 10**9, None)])


def test_query_objects_and_triples_agree():
    graph = random_graph(9, n=30, extra=60)
    frozen = DISO(graph, tau=3).freeze()
    failed = frozenset(random_failures_from(graph, 2, 4))
    as_objects = [Query(source=1, target=14, failed=failed)]
    as_triples = [(1, 14, tuple(failed))]
    assert frozen.query_many(as_objects) == frozen.query_many(as_triples)
    assert as_query_triple(as_objects[0])[:2] == (1, 14)


def test_batch_spans_multiple_kernel_blocks(monkeypatch):
    # Shrink the kernel block size so a small batch exercises the
    # multi-block path of ``_answer_many``.
    import repro.oracle.batch_kernel as batch_kernel

    graph = random_graph(10, n=30, extra=60)
    frozen = DISO(graph, tau=3).freeze()
    batch = generate_queries(graph, 17, f_gen=2, p=0.01, seed=10)
    expected = scalar_answers(frozen, batch)
    monkeypatch.setattr(batch_kernel, "DEFAULT_BLOCK", 5)
    assert_bitwise(frozen.query_many(batch), expected)


def test_numpyless_fallback_equivalence(monkeypatch):
    # With the kernel unavailable the batch API must silently take the
    # scalar loop and produce the same answers.
    import repro.oracle.batch_kernel as batch_kernel

    graph = random_graph(11, n=28, extra=50)
    frozen = DISO(graph, tau=3).freeze()
    batch = generate_queries(graph, 10, f_gen=2, p=0.01, seed=11)
    with_kernel = frozen.query_many(batch)
    monkeypatch.setattr(batch_kernel, "HAVE_NUMPY", False)
    monkeypatch.setattr(frozen, "_kernel_cache", None, raising=False)
    without_kernel = frozen.query_many(batch)
    assert_bitwise(without_kernel, with_kernel)


def test_module_level_query_many_on_dict_oracle():
    # Dict engines have no ``query_many``; the module helper loops.
    graph = random_graph(12, n=24, extra=40)
    oracle = DISO(graph, tau=3)
    frozen = oracle.freeze()
    batch = generate_queries(graph, 8, f_gen=2, seed=12)
    assert query_many(oracle, batch) == scalar_answers(frozen, batch)
    assert query_many(frozen, batch) == scalar_answers(frozen, batch)
