"""Bounded shortest path trees — second-level index part one (Def. 4.2).

The bounded shortest path tree ``G_u`` of a transit node ``u`` is the
path tree of the bounded Dijkstra's algorithm from ``u``: it contains
every node reachable without passing through another transit node, with
the tree path to each node equal to ``hat-P(u, v, emptyset)``.  Transit
nodes appear only as leaves.

This module wraps the per-tree machinery DISO needs at query time:
finding affected nodes and lazily recomputing distance-graph edge
weights via DynDijkstra-style repair, *without mutating* the stored
trees (stall avoidance, Section 4.2).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.graph.digraph import DiGraph, Edge
from repro.pathing.bounded import bounded_dijkstra
from repro.pathing.dynamic_spt import recompute_boundary_distances
from repro.pathing.spt import ShortestPathTree


class BoundedTreeStore:
    """Container for all bounded shortest path trees of an oracle."""

    __slots__ = ("_trees", "_transit")

    def __init__(
        self,
        trees: Mapping[int, ShortestPathTree],
        transit: frozenset[int],
    ) -> None:
        self._trees = dict(trees)
        self._transit = transit

    @property
    def transit(self) -> frozenset[int]:
        """The transit node set the trees are bounded by."""
        return self._transit

    def tree(self, root: int) -> ShortestPathTree:
        """Return ``G_root``.

        Raises
        ------
        KeyError
            If ``root`` has no stored tree (not a transit node).
        """
        return self._trees[root]

    def __contains__(self, root: int) -> bool:
        return root in self._trees

    def __len__(self) -> int:
        return len(self._trees)

    def roots(self) -> frozenset[int]:
        """All tree roots (== transit nodes)."""
        return frozenset(self._trees)

    def total_nodes(self) -> int:
        """Sum of tree sizes: ``|T| * |G_avg|`` of the space analysis."""
        return sum(len(tree) for tree in self._trees.values())

    def average_size(self) -> float:
        """``|G_avg|`` — average bounded tree size."""
        if not self._trees:
            return 0.0
        return self.total_nodes() / len(self._trees)

    # ------------------------------------------------------------------
    # Query-time lazy recomputation
    # ------------------------------------------------------------------
    def recomputed_out_weights(
        self,
        graph: DiGraph,
        root: int,
        failed: set[Edge],
    ) -> dict[int, float]:
        """Fresh distance-graph out-edge weights of ``root`` under ``failed``.

        Returns ``{v: d_hat(root, v, failed)}`` for every transit ``v``
        still reachable transit-free.  The stored tree is not modified —
        repaired distances are computed on the side (DynDijkstra
        adaptation, Section 4.1.2).
        """
        tree = self._trees[root]
        return recompute_boundary_distances(graph, tree, failed, self._transit)

    def rebuild_tree(self, graph: DiGraph, root: int) -> ShortestPathTree:
        """Recompute ``G_root`` from scratch and store it (maintenance).

        Returns the *old* tree so callers can unregister its edges from
        the inverted index before registering the new ones.
        """
        old = self._trees[root]
        fresh = bounded_dijkstra(graph, root, self._transit, direction="out")
        self._trees[root] = fresh.to_tree()
        return old

    def replace_tree(self, root: int, tree: ShortestPathTree) -> None:
        """Install ``tree`` as ``G_root`` (maintenance helper)."""
        self._trees[root] = tree
