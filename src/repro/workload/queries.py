"""Query workload generation (Section 7.1 "Query Generation").

A query is ``(s, t, F)``.  The paper generates ``F`` in two parts:

* ``f_gen`` **essential** failures: iteratively pick a random edge *on
  the current shortest path* ``P(s, t, F)``, fail it, and recompute —
  so every one of these failures actually forces the answer to change;
* **random** failures: every remaining edge fails independently with
  probability ``p`` (default 0.05%), modelling real failures that are
  oblivious to the query endpoints.

Defaults are the paper's: ``f_gen = 5``, ``p = 0.0005``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.graph.digraph import DiGraph, Edge
from repro.pathing.dijkstra import shortest_path


@dataclass(frozen=True)
class Query:
    """One distance sensitivity query ``(s, t, F)``.

    Attributes
    ----------
    source, target:
        Endpoints.
    failed:
        The failed edge set ``F``.
    essential_count:
        How many members of ``failed`` were generated as essential
        (on-path) failures; the rest are random background failures.
    """

    source: int
    target: int
    failed: frozenset[Edge]
    essential_count: int = 0

    @property
    def num_failures(self) -> int:
        """``|F|``."""
        return len(self.failed)


def essential_failures(
    graph: DiGraph,
    source: int,
    target: int,
    count: int,
    rng: random.Random,
) -> set[Edge]:
    """Generate up to ``count`` on-path failures for ``(source, target)``.

    Repeatedly fails a random edge of the current ``P(s, t, F)``.  Stops
    early when the endpoints become disconnected (no further edge can be
    essential).
    """
    failed: set[Edge] = set()
    for _ in range(count):
        path = shortest_path(graph, source, target, failed)
        if not path:
            break
        edge = path[rng.randrange(len(path))]
        failed.add(edge)
    return failed


def random_failures(
    graph: DiGraph,
    probability: float,
    rng: random.Random,
    exclude: set[Edge] | None = None,
) -> set[Edge]:
    """Fail each edge independently with ``probability``.

    Implemented by sampling the binomial failure count and then drawing
    that many distinct edges, which is O(failures) instead of O(m) per
    query on large graphs.
    """
    if probability <= 0.0:
        return set()
    edges = [(tail, head) for tail, head, _ in graph.edges()]
    count = _binomial(len(edges), probability, rng)
    if count == 0:
        return set()
    chosen = set(rng.sample(edges, min(count, len(edges))))
    if exclude:
        chosen -= exclude
    return chosen


def _binomial(n: int, p: float, rng: random.Random) -> int:
    """Sample Binomial(n, p) by geometric gap skipping.

    Runs in O(n * p) expected time — cheap for the tiny failure rates
    used here (p = 0.05%) even on large edge sets.
    """
    if p <= 0.0 or n <= 0:
        return 0
    if p >= 1.0:
        return n
    log_q = math.log1p(-p)
    count = 0
    position = -1
    while True:
        gap = int(math.log(1.0 - rng.random()) / log_q)
        position += gap + 1
        if position >= n:
            return count
        count += 1


def generate_query(
    graph: DiGraph,
    rng: random.Random,
    f_gen: int = 5,
    p: float = 0.0005,
    nodes: list[int] | None = None,
) -> Query:
    """Generate one query with the paper's two-part failure model."""
    if nodes is None:
        nodes = sorted(graph.nodes())
    while True:
        source = nodes[rng.randrange(len(nodes))]
        target = nodes[rng.randrange(len(nodes))]
        if source != target:
            break
    essential = essential_failures(graph, source, target, f_gen, rng)
    background = random_failures(graph, p, rng, exclude=essential)
    return Query(
        source=source,
        target=target,
        failed=frozenset(essential | background),
        essential_count=len(essential),
    )


def generate_queries(
    graph: DiGraph,
    count: int,
    f_gen: int = 5,
    p: float = 0.0005,
    seed: int = 0,
    nodes: list[int] | None = None,
) -> list[Query]:
    """Generate ``count`` queries (the paper averages over 100).

    Deterministic given ``seed``.
    """
    rng = random.Random(seed)
    if nodes is None:
        nodes = sorted(graph.nodes())
    return [
        generate_query(graph, rng, f_gen=f_gen, p=p, nodes=nodes)
        for _ in range(count)
    ]
