"""Tests for the endpoint-caching oracle (paper Example 1 workloads)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.oracle.caching import CachingDISO, _explored_region
from repro.oracle.diso import DISO
from repro.pathing.bounded import bounded_dijkstra
from repro.pathing.dijkstra import shortest_distance
from repro.workload.queries import generate_queries
from util import random_failures_from, random_graph


class TestExploredRegion:
    def test_region_covers_relaxed_edges(self, small_road):
        transit = frozenset({10, 40, 80, 120})
        result = bounded_dijkstra(small_road, 0, transit)
        region = _explored_region(small_road, result)
        # Every tree edge of the search was relaxed: must be in region.
        for node, parent in result.parent.items():
            if parent is not None:
                assert (parent, node) in region

    def test_boundary_out_edges_excluded(self, small_road):
        transit = frozenset({10, 40, 80, 120})
        result = bounded_dijkstra(small_road, 0, transit)
        region = _explored_region(small_road, result)
        for boundary in result.access:
            if boundary == 0:
                continue
            for head in small_road.successors(boundary):
                edge = (boundary, head)
                # Out-edges of pure boundary nodes were never relaxed;
                # they may appear only if another expanded node shares
                # the edge (impossible for out-edges keyed by tail).
                assert edge not in region


class TestCachingDISO:
    def test_exact_like_diso(self, small_road):
        cached = CachingDISO(small_road, tau=3, theta=1.0)
        plain = DISO(small_road, transit=cached.transit)
        queries = generate_queries(small_road, 12, f_gen=3, p=0.003, seed=9)
        for q in queries:
            assert cached.query(q.source, q.target, q.failed) == (
                pytest.approx(plain.query(q.source, q.target, q.failed))
            )

    def test_repeated_endpoints_hit_cache(self, small_road):
        oracle = CachingDISO(small_road, tau=3, theta=1.0)
        oracle.query(0, 143)
        before = oracle.cache_hits
        for _ in range(5):
            oracle.query(0, 143)
        assert oracle.cache_hits >= before + 10  # 2 searches per query

    def test_cache_hit_with_remote_failures(self, small_road):
        """Failures outside both endpoint regions reuse the cache."""
        oracle = CachingDISO(small_road, tau=3, theta=1.0)
        base = oracle.query(0, 143)
        hits_before = oracle.cache_hits
        # An edge deep in the middle of the graph, outside the local
        # bounded regions of the corners (verified via the region).
        result = bounded_dijkstra(small_road, 0, oracle.transit)
        region = _explored_region(small_road, result)
        middle_edge = next(
            (t, h)
            for t, h, _ in small_road.edges()
            if (t, h) not in region
        )
        distance = oracle.query(0, 143, failed={middle_edge})
        assert distance >= base - 1e-9
        assert distance == pytest.approx(
            shortest_distance(small_road, 0, 143, {middle_edge})
        )
        assert oracle.cache_hits > hits_before

    def test_cache_bypass_when_failures_touch_region(self, small_road):
        oracle = CachingDISO(small_road, tau=3, theta=1.0)
        oracle.query(0, 143)  # warm the cache
        # Fail an edge right at the source: region definitely touched.
        local_edge = (0, next(iter(small_road.successors(0))))
        distance = oracle.query(0, 143, failed={local_edge})
        assert distance == pytest.approx(
            shortest_distance(small_road, 0, 143, {local_edge})
        )

    def test_invalidate_cache(self, small_road):
        oracle = CachingDISO(small_road, tau=3, theta=1.0)
        oracle.query(0, 143)
        oracle.invalidate_cache()
        misses_before = oracle.cache_misses
        oracle.query(0, 143)
        assert oracle.cache_misses > misses_before

    def test_lru_eviction(self, small_road):
        oracle = CachingDISO(small_road, tau=3, theta=1.0, cache_size=2)
        oracle.query(0, 143)
        oracle.query(5, 100)
        oracle.query(7, 90)
        assert len(oracle._cache) <= 2

    def test_cache_stats_snapshot_is_consistent(self, small_road):
        """stats() reads hits/misses/entries in one critical section
        and always accounts for every lookup made so far."""
        oracle = CachingDISO(small_road, tau=3, theta=1.0)
        assert oracle.cache_stats() == {"hits": 0, "misses": 0, "entries": 0}
        for _ in range(4):
            oracle.query(0, 143)
        stats = oracle.cache_stats()
        assert stats["hits"] == oracle.cache_hits
        assert stats["misses"] == oracle.cache_misses
        assert stats["entries"] == len(oracle._cache)
        # Every bounded-search lookup is either a hit or a miss.
        assert stats["hits"] + stats["misses"] >= 8  # 2 searches/query
        assert stats["hits"] > 0 and stats["misses"] > 0

    def test_maintenance_drops_cache_automatically(self, small_road):
        """OracleMaintainer invalidates the endpoint cache on updates."""
        from repro.oracle.maintenance import OracleMaintainer
        from repro.pathing.dijkstra import shortest_distance

        oracle = CachingDISO(small_road, tau=3, theta=1.0)
        baseline = oracle.query(0, 143)  # warm the cache
        maintainer = OracleMaintainer(oracle)
        # Permanently delete an edge near the source so a stale cached
        # region would give a wrong answer.
        head = next(iter(small_road.successors(0)))
        maintainer.delete_edge(0, head)
        assert len(oracle._cache) == 0
        assert oracle.query(0, 143) == pytest.approx(
            shortest_distance(small_road, 0, 143)
        )

    def test_threaded_caching_queries(self, small_road):
        """The cache's lock keeps concurrent querying consistent."""
        import threading

        oracle = CachingDISO(small_road, tau=3, theta=1.0)
        failed = {(0, 1), (70, 71)}
        expected = oracle.query(0, 143, failed)
        results: list[float] = []
        lock = threading.Lock()

        def worker() -> None:
            for _ in range(10):
                value = oracle.query(0, 143, failed)
                with lock:
                    results.append(value)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(v == expected for v in results)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    fail_seed=st.integers(min_value=0, max_value=10_000),
    s=st.integers(min_value=0, max_value=29),
    t=st.integers(min_value=0, max_value=29),
)
def test_caching_diso_exact_random(seed, fail_seed, s, t):
    """Cache fast path and slow path both stay exact."""
    graph = random_graph(seed)
    oracle = CachingDISO(graph, tau=2, theta=4.0)
    failed = random_failures_from(graph, fail_seed, 6)
    # Warm the cache failure-free, then query with failures (the case
    # where a wrong region check would surface as a wrong answer).
    oracle.query(s, t)
    expected = shortest_distance(graph, s, t, failed)
    assert oracle.query(s, t, failed) == pytest.approx(expected)
    # And again, exercising the post-warm-up lookup path.
    assert oracle.query(s, t, failed) == pytest.approx(expected)
