"""Bench: accuracy of the approximate methods (Section 7.1).

Measures the mean relative error of DISO-S, ADISO-P, and FDDO against
exact Dijkstra ground truth and persists ``results/accuracy.txt``.
At synthetic scale the absolute errors are larger than the paper's
(0.6% / 2.9% / 1.6% on million-node graphs) — see EXPERIMENTS.md —
but the invariants (no underestimates; bounded error) are asserted.
"""

from __future__ import annotations

from repro.experiments.accuracy import format_accuracy, run_accuracy

from bench_util import SCALE, SEED, write_result


def test_accuracy_all_methods(benchmark):
    rows = benchmark.pedantic(
        lambda: run_accuracy(
            road_dataset="NY",
            social_dataset="DBLP",
            scale=SCALE,
            query_count=15,
            seed=SEED,
            fddo_landmarks=20,
        ),
        rounds=1,
        iterations=1,
    )
    write_result("accuracy", format_accuracy(rows))
    for row in rows:
        assert row["error_pct"] >= 0.0
        # Bounded error: nothing drifts to pathological estimates.
        assert row["error_pct"] < 60.0
