"""Finding records produced by the lint engine."""

from __future__ import annotations

from dataclasses import dataclass, field


class Severity:
    """Finding severities.

    Both count toward the gate — a warning is "almost certainly worth a
    look", not "free to ignore"; the distinction only orders output.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass
class Finding:
    """One rule violation at one source location.

    ``suppressed`` findings were matched by a ``# dsolint: disable``
    comment; they are kept in reports (the JSON artifact shows what was
    waived and why) but do not fail the gate.  ``justification`` is the
    text after ``--`` in the suppression comment, if any.
    """

    rule_id: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False
    justification: str | None = None

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
            "justification": self.justification,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        """Inverse of :meth:`to_dict` (summary-cache round trip)."""
        return cls(
            rule_id=payload["rule"],
            severity=payload["severity"],
            path=payload["path"],
            line=payload["line"],
            col=payload["col"],
            message=payload["message"],
            suppressed=payload.get("suppressed", False),
            justification=payload.get("justification"),
        )


@dataclass
class FileFindings:
    """Findings for one linted file (internal engine bookkeeping)."""

    path: str
    findings: list[Finding] = field(default_factory=list)
    parse_error: str | None = None
