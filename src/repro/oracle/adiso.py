"""ADISO — the A* search-based distance sensitivity oracle (Section 5).

ADISO keeps DISO's two-level index and adds a landmark table.  Its query
procedure is Algorithm 2, the *improved Dijkstra-like procedure*: a
merged best-first search over the distance graph ``D`` and the input
graph ``G`` simultaneously, ordered by the A* cost

    cost(v) = d_o(s, v, F) + h(v, t)

where ``h`` is the landmark lower bound (valid under failures because
deletions only lengthen paths, Section 5.2).

The crucial difference from DISO is the handling of *affected* transit
nodes: instead of repairing their bounded trees (which recomputes every
boundary distance, including directions the query will never take),
Algorithm 2 simply relaxes their out-edges in ``G`` and lets the A*
ordering steer the recomputation toward the target — the "improved lazy
recomputation" of Section 5.3.  Unaffected transit nodes relax their
precomputed ``D`` edges as usual.  No index entry is ever written, so
stall avoidance carries over.

Implementation notes
--------------------
* Two priority queues ``Q_D`` / ``Q_G`` are kept as in the pseudocode;
  lazy deletion with a shared cost map implements the decrease-key.
  Since ALT lower bounds are *consistent*, a single global settled set
  is safe (no reopening).
* Algorithm 2's line 11 guards the ``A*_in(t)`` candidate update with
  ``X1 = D``; a transit node can however also surface in ``Q_G`` (it is
  pushed there when reached from another transit node, lines 19-20), so
  this implementation applies the update on *either* queue's pop — a
  correctness-preserving strengthening documented in DESIGN.md.
"""

from __future__ import annotations

import time
from heapq import heappop, heappush

from repro.graph.digraph import DiGraph, Edge
from repro.landmarks.base import LandmarkTable
from repro.landmarks.selection import build_landmarks
from repro.oracle.base import (
    INFINITY,
    QueryResult,
    QueryStats,
    normalize_failures,
)
from repro.oracle.diso import DISO
from repro.pathing.bounded import bounded_dijkstra


class ADISO(DISO):
    """The paper's second oracle: DISO + landmark A* heuristics.

    Parameters
    ----------
    graph:
        The input graph ``G``.
    tau, theta, transit:
        Transit-set parameters, as in :class:`DISO`.  Paper defaults for
        ADISO: ``tau = 7`` for road networks, 3 for social networks.
    num_landmarks:
        ``N_L``; the paper settles on 10 for all datasets.
    alpha:
        SLS coverage slack (0.1 road / 0.25 social in the paper).
    landmarks:
        Explicit landmark node list overriding SLS selection; used by
        the Figure 5 experiments to plug in RAND / max-cover /
        best-cover selections.
    landmark_table:
        A prebuilt :class:`LandmarkTable` to share across oracles.
    seed:
        PRNG seed for SLS sampling.
    """

    name = "ADISO"
    exact = True

    def __init__(
        self,
        graph: DiGraph,
        tau: int = 4,
        theta: float = 1.0,
        transit: set[int] | frozenset[int] | None = None,
        num_landmarks: int = 10,
        alpha: float = 0.1,
        landmarks: list[int] | None = None,
        landmark_table: LandmarkTable | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(graph, tau=tau, theta=theta, transit=transit)
        started = time.perf_counter()
        if landmark_table is not None:
            self.landmarks = landmark_table
        else:
            if landmarks is None:
                landmarks = self.select_landmarks(
                    graph, num_landmarks, seed=seed, alpha=alpha
                )
            self.landmarks = LandmarkTable(graph, landmarks)
        self.preprocess_seconds += time.perf_counter() - started

    # ------------------------------------------------------------------
    # Build plane hooks
    # ------------------------------------------------------------------
    @staticmethod
    def select_landmarks(
        graph: DiGraph,
        num_landmarks: int = 10,
        seed: int = 0,
        alpha: float = 0.1,
        landmarks: list[int] | None = None,
    ) -> list[int]:
        """The default landmark node list: SLS selection."""
        return build_landmarks(
            graph, num_landmarks, seed=seed, alpha=alpha, landmarks=landmarks
        )

    @classmethod
    def _from_assembled(
        cls,
        graph: DiGraph,
        distance_graph,
        trees,
        *,
        landmark_table: LandmarkTable,
        preprocess_seconds: float = 0.0,
    ) -> "ADISO":
        """Adopt an index plus a landmark table assembled elsewhere."""
        oracle = super()._from_assembled(
            graph,
            distance_graph,
            trees,
            preprocess_seconds=preprocess_seconds,
        )
        oracle.landmarks = landmark_table
        return oracle

    # ------------------------------------------------------------------
    # Frozen query plane
    # ------------------------------------------------------------------
    def freeze(self):
        """Compile index + landmark table for flat-array query serving.

        Returns a :class:`repro.oracle.frozen.FrozenADISO` running
        Algorithm 2 on integers with reusable search arenas.
        """
        from repro.oracle.frozen import FrozenADISO

        return FrozenADISO(self)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query_detailed(
        self,
        source: int,
        target: int,
        failed: set[Edge] | frozenset[Edge] | None = None,
    ) -> QueryResult:
        self._validate_endpoints(source, target)
        fail_set = normalize_failures(failed)
        stats = QueryStats()
        started = time.perf_counter()
        if source == target:
            stats.total_seconds = time.perf_counter() - started
            return QueryResult(distance=0.0, stats=stats)

        affected = self._find_affected_nodes(fail_set, stats)
        stats.affected_count = len(affected)

        access_start = time.perf_counter()
        forward = bounded_dijkstra(
            self.graph, source, self.transit, fail_set, "out"
        )
        backward = bounded_dijkstra(
            self.graph, target, self.transit, fail_set, "in"
        )
        stats.access_seconds = time.perf_counter() - access_start
        stats.graph_settled += (
            forward.settled_count + backward.settled_count
        )

        local = forward.dist.get(target, INFINITY)
        overlay = self._merged_search(
            forward.access,
            backward.access,
            fail_set,
            affected,
            target,
            stats,
            upper_bound=local,
        )
        best = min(local, overlay)
        stats.total_seconds = time.perf_counter() - started
        return QueryResult(distance=best, stats=stats)

    def _merged_search(
        self,
        seeds: dict[int, float],
        into_target: dict[int, float],
        failed: frozenset[Edge],
        affected: set[int],
        target: int,
        stats: QueryStats,
        upper_bound: float,
    ) -> float:
        """Algorithm 2: the improved Dijkstra-like procedure."""
        graph = self.graph
        overlay = self.distance_graph.graph
        transit = self.transit
        heuristic = self.landmarks.heuristic_to(target)

        d_o: dict[int, float] = {}
        cost: dict[int, float] = {}
        settled: set[int] = set()
        queue_d: list[tuple[float, int]] = []
        queue_g: list[tuple[float, int]] = []

        for node, d in seeds.items():
            d_o[node] = d
            c = d + heuristic(node)
            cost[node] = c
            heappush(queue_d, (c, node))

        def clean(heap: list[tuple[float, int]]) -> None:
            while heap:
                c, node = heap[0]
                if node in settled or c > cost.get(node, INFINITY) + 1e-12:
                    heappop(heap)
                else:
                    return

        best_known = upper_bound
        graph_settled = 0
        while True:
            clean(queue_d)
            clean(queue_g)
            top_d = queue_d[0][0] if queue_d else INFINITY
            top_g = queue_g[0][0] if queue_g else INFINITY
            if top_d == INFINITY and top_g == INFINITY:
                break
            current_best = min(best_known, d_o.get(target, INFINITY))
            if min(top_d, top_g) >= current_best:
                # Every remaining label's completion is at least its A*
                # cost, so nothing can improve the answer.
                break
            heap = queue_d if top_d <= top_g else queue_g
            _, node = heappop(heap)
            settled.add(node)
            if node == target:
                break
            node_dist = d_o[node]

            tail_distance = into_target.get(node)
            if tail_distance is not None:
                candidate = node_dist + tail_distance
                if candidate < d_o.get(target, INFINITY):
                    d_o[target] = candidate
                    cost[target] = candidate  # h(t, t) = 0
                    heappush(queue_d, (candidate, target))

            use_overlay = node in transit and node not in affected
            neighbors = (
                overlay.successors(node) if use_overlay
                else graph.successors(node)
            )
            if not use_overlay:
                graph_settled += 1
            node_in_transit = node in transit
            for head, weight in neighbors.items():
                if head in settled or head == node:
                    continue
                if not use_overlay and (node, head) in failed:
                    continue
                candidate = node_dist + weight
                if candidate < d_o.get(head, INFINITY):
                    d_o[head] = candidate
                    c = candidate + heuristic(head)
                    cost[head] = c
                    if not node_in_transit and head in transit:
                        heappush(queue_d, (c, head))
                    else:
                        heappush(queue_g, (c, head))
        stats.overlay_settled += len(settled)
        stats.graph_settled += graph_settled
        return d_o.get(target, INFINITY)

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def index_entries(self) -> dict[str, int]:
        entries = super().index_entries()
        entries["landmark_entries"] = self.landmarks.size_in_entries()
        return entries
