"""The frozen query plane must agree exactly with the dict engines.

The contract of ``freeze()`` is bitwise answer parity: the compiled
engines perform the same float additions in the same order as the dict
engines, so distances are ``==``-equal, not just approximately equal.
These tests sweep randomized graphs, endpoints and failure sets —
including failures inside stored trees, disconnecting cuts and s == t —
plus the bounded-search substrate, arena reuse, and the no-locking
concurrency claim.
"""

from __future__ import annotations

import random
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.csr import FrozenGraph, SearchArena, csr_dijkstra
from repro.oracle.adiso import ADISO
from repro.oracle.diso import DISO
from repro.oracle.diso_s import DISOSparse
from repro.oracle.frozen import FrozenADISO, FrozenDISO
from repro.oracle.parallel import QueryEngine
from repro.pathing.bounded import bounded_dijkstra
from repro.pathing.csr_bounded import csr_bounded_dijkstra
from repro.pathing.spt import INFINITY
from repro.workload.queries import Query
from util import random_failures_from, random_graph


def _random_cases(graph, seed: int, count: int):
    """Random (source, target, failures) cases, failure sizes 0..6."""
    rng = random.Random(seed)
    nodes = sorted(graph.nodes())
    edges = sorted((t, h) for t, h, _ in graph.edges())
    for index in range(count):
        source = rng.choice(nodes)
        target = source if index % 9 == 0 else rng.choice(nodes)
        k = rng.randint(0, 6)
        failed = set(rng.sample(edges, k)) if k else None
        yield source, target, failed


class TestBoundedSearchParity:
    """csr_bounded_dijkstra must mirror bounded_dijkstra exactly."""

    @given(seed=st.integers(min_value=0, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_forward_access_sets_match(self, seed):
        graph = random_graph(seed)
        frozen = FrozenGraph.from_digraph(graph)
        rng = random.Random(seed + 1)
        transit = frozenset(rng.sample(sorted(graph.nodes()), 6))
        flags = bytearray(frozen.number_of_nodes())
        for label in transit:
            flags[frozen.index_of[label]] = 1
        failed = random_failures_from(graph, seed + 2, 3)
        failed_ids = frozen.edge_ids(failed)
        source = rng.choice(sorted(graph.nodes()))

        expected = bounded_dijkstra(graph, source, transit, failed)
        got = csr_bounded_dijkstra(
            frozen, frozen.index_of[source], flags, failed_ids, "out"
        )
        expected_access = {
            frozen.index_of[label]: d for label, d in expected.access.items()
        }
        assert got.access == expected_access
        for label, d in expected.dist.items():
            assert got.distance(frozen.index_of[label]) == d

    @given(seed=st.integers(min_value=0, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_backward_access_sets_match(self, seed):
        graph = random_graph(seed)
        frozen = FrozenGraph.from_digraph(graph)
        rng = random.Random(seed + 3)
        transit = frozenset(rng.sample(sorted(graph.nodes()), 6))
        flags = bytearray(frozen.number_of_nodes())
        for label in transit:
            flags[frozen.index_of[label]] = 1
        failed = random_failures_from(graph, seed + 4, 3)
        source = rng.choice(sorted(graph.nodes()))

        expected = bounded_dijkstra(
            graph, source, transit, failed, direction="in"
        )
        got = csr_bounded_dijkstra(
            frozen,
            frozen.index_of[source],
            flags,
            frozen.edge_ids(failed),
            "in",
        )
        expected_access = {
            frozen.index_of[label]: d for label, d in expected.access.items()
        }
        assert got.access == expected_access

    def test_stale_result_raises(self):
        graph = random_graph(0)
        frozen = FrozenGraph.from_digraph(graph)
        flags = bytearray(frozen.number_of_nodes())
        arena = SearchArena(frozen.number_of_nodes())
        first = csr_bounded_dijkstra(frozen, 0, flags, None, "out", arena)
        csr_bounded_dijkstra(frozen, 1, flags, None, "out", arena)
        with pytest.raises(RuntimeError):
            first.distance(0)


class TestFrozenDISOParity:
    @given(seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=12, deadline=None)
    def test_random_graphs_endpoints_failures(self, seed):
        graph = random_graph(seed)
        oracle = DISO(graph, tau=3, theta=1.0)
        frozen = oracle.freeze()
        for source, target, failed in _random_cases(graph, seed, 24):
            expected = oracle.query(source, target, failed=failed)
            assert frozen.query(source, target, failed=failed) == expected

    def test_failures_inside_stored_trees(self):
        graph = random_graph(11)
        oracle = DISO(graph, tau=3, theta=1.0)
        frozen = oracle.freeze()
        # Failure sets drawn from stored tree edges, so every query
        # exercises the lazy recompute path.
        tree_edges = sorted(
            {
                (parent, node)
                for root in oracle.trees.roots()
                for node, parent in oracle.trees.tree(root).parent.items()
                if parent is not None
            }
        )
        rng = random.Random(99)
        nodes = sorted(graph.nodes())
        for _ in range(40):
            failed = set(rng.sample(tree_edges, min(4, len(tree_edges))))
            source, target = rng.choice(nodes), rng.choice(nodes)
            expected = oracle.query(source, target, failed=failed)
            got = frozen.query(source, target, failed=failed)
            assert got == expected

    def test_disconnecting_failures(self):
        # A path graph: cutting both directions of one link disconnects.
        from repro.graph.generators import path_network

        graph = path_network(10)
        oracle = DISO(graph, tau=2, theta=1.0)
        frozen = oracle.freeze()
        failed = {(4, 5), (5, 4)}
        assert oracle.query(0, 9, failed=failed) == INFINITY
        assert frozen.query(0, 9, failed=failed) == INFINITY
        assert frozen.query(0, 4, failed=failed) == oracle.query(
            0, 4, failed=failed
        )

    def test_source_equals_target(self):
        graph = random_graph(3)
        frozen = DISO(graph, tau=3, theta=1.0).freeze()
        assert frozen.query(5, 5) == 0.0
        assert frozen.query(5, 5, failed={(5, 6)}) == 0.0

    def test_arena_reuse_is_consistent(self):
        """Back-to-back queries on one thread reuse arenas unchanged."""
        graph = random_graph(17)
        oracle = DISO(graph, tau=3, theta=1.0)
        frozen = oracle.freeze()
        cases = list(_random_cases(graph, 23, 30))
        first = [frozen.query(s, t, failed=f) for s, t, f in cases]
        second = [frozen.query(s, t, failed=f) for s, t, f in cases]
        assert first == second
        expected = [oracle.query(s, t, failed=f) for s, t, f in cases]
        assert first == expected

    def test_name_and_metadata(self):
        graph = random_graph(2)
        oracle = DISO(graph, tau=3, theta=1.0)
        frozen = oracle.freeze()
        assert isinstance(frozen, FrozenDISO)
        assert frozen.name == "DISO-F"
        assert frozen.exact
        assert frozen.freeze_seconds > 0.0
        assert frozen.preprocess_seconds >= oracle.preprocess_seconds


class TestFrozenADISOParity:
    @given(seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_random_graphs_endpoints_failures(self, seed):
        graph = random_graph(seed)
        oracle = ADISO(graph, tau=3, theta=1.0, seed=seed)
        frozen = oracle.freeze()
        assert isinstance(frozen, FrozenADISO)
        for source, target, failed in _random_cases(graph, seed + 7, 20):
            expected = oracle.query(source, target, failed=failed)
            assert frozen.query(source, target, failed=failed) == expected


class TestFrozenDISOSparseParity:
    @given(seed=st.integers(min_value=0, max_value=20))
    @settings(max_examples=8, deadline=None)
    def test_sparsified_oracle_parity_including_fallback(self, seed):
        graph = random_graph(seed, n=24, extra=40)
        oracle = DISOSparse(graph, beta=2.0, tau=3, theta=1.0)
        frozen = oracle.freeze()
        for source, target, failed in _random_cases(graph, seed + 13, 20):
            expected = oracle.query(source, target, failed=failed)
            assert frozen.query(source, target, failed=failed) == expected


class TestConcurrency:
    def test_concurrent_queries_match_sequential(self):
        """QueryEngine over one shared frozen index: no cross-thread
        interference despite each thread's private arena reuse."""
        graph = random_graph(29)
        frozen = DISO(graph, tau=3, theta=1.0).freeze()
        cases = list(_random_cases(graph, 31, 60))
        sequential = [frozen.query(s, t, failed=f) for s, t, f in cases]

        engine = QueryEngine(frozen, threads=4)
        queries = [
            Query(source=s, target=t, failed=frozenset(f) if f else frozenset())
            for s, t, f in cases
        ]
        report = engine.run(queries)
        assert report.answers == sequential

    def test_threads_get_private_arenas(self):
        graph = random_graph(7)
        frozen = DISO(graph, tau=3, theta=1.0).freeze()
        arenas = {}

        def grab(key):
            frozen.query(0, 1)
            arenas[key] = frozen._arenas()

        threads = [
            threading.Thread(target=grab, args=(i,)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        grab("main")
        distinct = {id(a) for a in arenas.values()}
        assert len(distinct) == len(arenas)

    def test_single_thread_engine_reuses_caller_arenas(self, monkeypatch):
        """Regression: ``threads=1`` must not allocate arenas per batch.

        ``run()`` used to spin up a fresh one-thread executor per call;
        each batch then ran on a brand-new pool thread, and since the
        frozen engines key their arena set on the thread, every batch
        re-allocated all four ``SearchArena`` instances.  A one-worker
        engine now answers in the calling thread, so repeated batches
        share the caller's set.
        """
        graph = random_graph(11)
        frozen = DISO(graph, tau=3, theta=1.0).freeze()
        cases = list(_random_cases(graph, 17, 10))
        expected = [frozen.query(s, t, failed=f) for s, t, f in cases]

        allocations = []
        original_init = SearchArena.__init__

        def counting_init(self, size):
            allocations.append(size)
            original_init(self, size)

        monkeypatch.setattr(SearchArena, "__init__", counting_init)
        engine = QueryEngine(frozen, threads=1)
        queries = [
            Query(
                source=s,
                target=t,
                failed=frozenset(f) if f else frozenset(),
            )
            for s, t, f in cases
        ]
        first = engine.run(queries)
        second = engine.run(queries)
        assert first.answers == expected
        assert second.answers == expected
        # The caller thread warmed its arena set answering `expected`
        # above, so the two engine batches must allocate nothing at all.
        assert allocations == []


class TestArenaDijkstra:
    """Satellite: arena-aware csr_dijkstra answers never drift."""

    @given(seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=15, deadline=None)
    def test_arena_matches_arenaless(self, seed):
        graph = random_graph(seed)
        frozen = FrozenGraph.from_digraph(graph)
        arena = SearchArena(frozen.number_of_nodes())
        failed = random_failures_from(graph, seed + 1, 3)
        failed_ids = frozen.edge_ids(failed)
        for source in list(graph.nodes())[:4]:
            plain = csr_dijkstra(frozen, source, failed_ids)
            arenaed = csr_dijkstra(frozen, source, failed_ids, arena=arena)
            assert arenaed == plain

    def test_size_mismatch_raises(self):
        graph = random_graph(1)
        frozen = FrozenGraph.from_digraph(graph)
        with pytest.raises(ValueError):
            csr_dijkstra(frozen, 0, arena=SearchArena(3))
