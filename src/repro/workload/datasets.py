"""Synthetic dataset registry mirroring the paper's Table 2 at reduced scale.

The paper evaluates on six real graphs (three DIMACS road networks,
three SNAP social networks).  Offline, this registry generates synthetic
stand-ins that reproduce the structural properties each dataset
represents in the evaluation — degree regime, weight model, and the
paper's recommended oracle parameters (tau, theta, alpha, beta) per
dataset family.  Sizes are scaled down for pure-Python tractability; the
``scale`` knob grows them proportionally for longer benchmark runs.

See DESIGN.md, "Substitutions", for why this preserves the experiments'
shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import DiGraph
from repro.graph.generators import road_network, scale_free_network


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe and paper-recommended parameters for one dataset.

    Attributes
    ----------
    name:
        Short name matching the paper's Table 2 rows.
    kind:
        ``"road"`` (bounded-degree) or ``"social"`` (scale-free).
    base_nodes:
        Node count at ``scale = 1.0``.
    attach:
        Preferential-attachment parameter for social graphs (drives the
        average degree; Pokec's 18.8 needs ``attach = 9``).
    tau_diso, tau_adiso:
        Paper-recommended ISC rounds for DISO / ADISO on this family
        (scaled down alongside the graphs: the paper's tau of 8 on a
        24M-node road network corresponds to a much smaller tau here).
    theta:
        Algorithm 1 threshold (1 road, 16 social in the paper).
    alpha:
        SLS coverage slack (0.1 road, 0.25 social in the paper).
    beta:
        DISO-S sparsification bound (paper: 1.5 DBLP/YOU, 2.0 POKE).
    """

    name: str
    kind: str
    base_nodes: int
    attach: int = 3
    tau_diso: int = 4
    tau_adiso: int = 3
    theta: float = 1.0
    alpha: float = 0.1
    beta: float = 1.5


DATASETS: dict[str, DatasetSpec] = {
    # Road networks (bounded degree, travel-time weights).
    "NY": DatasetSpec(
        name="NY", kind="road", base_nodes=30 * 22,
        tau_diso=4, tau_adiso=3, theta=1.0, alpha=0.1,
    ),
    "CAL": DatasetSpec(
        name="CAL", kind="road", base_nodes=45 * 34,
        tau_diso=4, tau_adiso=3, theta=1.0, alpha=0.1,
    ),
    "USA": DatasetSpec(
        name="USA", kind="road", base_nodes=62 * 48,
        tau_diso=5, tau_adiso=4, theta=1.0, alpha=0.1,
    ),
    # Social networks (scale-free, uniform(0, 1) weights).
    "DBLP": DatasetSpec(
        name="DBLP", kind="social", base_nodes=700, attach=3,
        tau_diso=3, tau_adiso=2, theta=16.0, alpha=0.25, beta=1.5,
    ),
    "YOU": DatasetSpec(
        name="YOU", kind="social", base_nodes=1200, attach=3,
        tau_diso=3, tau_adiso=2, theta=16.0, alpha=0.25, beta=1.5,
    ),
    "POKE": DatasetSpec(
        name="POKE", kind="social", base_nodes=900, attach=9,
        tau_diso=3, tau_adiso=2, theta=16.0, alpha=0.25, beta=2.0,
    ),
}

ROAD_DATASETS = ("NY", "CAL", "USA")
SOCIAL_DATASETS = ("DBLP", "YOU", "POKE")


def load_dataset(name: str, scale: float = 1.0, seed: int = 7) -> DiGraph:
    """Generate the synthetic stand-in for dataset ``name``.

    Deterministic given ``seed``.  ``scale`` multiplies the node count.

    Raises
    ------
    KeyError
        If ``name`` is not a registered dataset.
    """
    spec = DATASETS[name]
    nodes = max(16, int(spec.base_nodes * scale))
    if spec.kind == "road":
        # Keep an approximately 4:3 grid aspect ratio.
        width = max(4, int((nodes * 4 / 3) ** 0.5))
        height = max(4, nodes // width)
        return road_network(width, height, seed=seed)
    return scale_free_network(nodes, attach=spec.attach, seed=seed)


def dataset_statistics(graph: DiGraph) -> dict[str, float]:
    """Compute the Table 2 statistics row for a graph."""
    return {
        "nodes": graph.number_of_nodes(),
        "edges": graph.number_of_edges(),
        "avg_degree": round(graph.average_degree(), 2),
        "max_degree": graph.max_degree(),
    }
