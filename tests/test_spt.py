"""Unit tests for the ShortestPathTree structure."""

from __future__ import annotations

import pytest

from repro.pathing.spt import INFINITY, ShortestPathTree


def build_sample_tree() -> ShortestPathTree:
    """Root 0 with two branches: 0-1-2-3 and 0-4."""
    tree = ShortestPathTree(0)
    tree.attach(1, 0, 1.0)
    tree.attach(2, 1, 2.0)
    tree.attach(3, 2, 3.0)
    tree.attach(4, 0, 1.5)
    return tree


class TestConstruction:
    def test_root_properties(self):
        tree = ShortestPathTree(7)
        assert tree.root == 7
        assert tree.distance(7) == 0.0
        assert tree.parent[7] is None
        assert len(tree) == 1

    def test_attach_basic(self):
        tree = build_sample_tree()
        assert tree.distance(3) == 3.0
        assert tree.parent[3] == 2
        assert 3 in tree.children(2)

    def test_attach_missing_parent_raises(self):
        tree = ShortestPathTree(0)
        with pytest.raises(KeyError):
            tree.attach(2, 1, 1.0)

    def test_reattach_moves_node(self):
        tree = build_sample_tree()
        tree.attach(4, 1, 2.0)
        assert tree.parent[4] == 1
        assert 4 not in tree.children(0)
        assert 4 in tree.children(1)

    def test_cannot_reparent_root(self):
        tree = build_sample_tree()
        with pytest.raises(ValueError):
            tree.attach(0, 1, 1.0)


class TestQueries:
    def test_contains(self):
        tree = build_sample_tree()
        assert 3 in tree
        assert 9 not in tree

    def test_distance_missing_is_inf(self):
        tree = build_sample_tree()
        assert tree.distance(42) == INFINITY

    def test_tree_edges(self):
        tree = build_sample_tree()
        assert sorted(tree.tree_edges()) == [
            (0, 1),
            (0, 4),
            (1, 2),
            (2, 3),
        ]

    def test_path_to(self):
        tree = build_sample_tree()
        assert tree.path_to(3) == [(0, 1), (1, 2), (2, 3)]
        assert tree.path_to(0) == []
        assert tree.path_to(99) is None

    def test_path_nodes_to(self):
        tree = build_sample_tree()
        assert tree.path_nodes_to(3) == [0, 1, 2, 3]
        assert tree.path_nodes_to(99) is None

    def test_subtree_nodes(self):
        tree = build_sample_tree()
        assert set(tree.subtree_nodes(1)) == {1, 2, 3}
        assert set(tree.subtree_nodes(0)) == {0, 1, 2, 3, 4}

    def test_subtree_missing_raises(self):
        tree = build_sample_tree()
        with pytest.raises(KeyError):
            list(tree.subtree_nodes(9))

    def test_depth(self):
        tree = build_sample_tree()
        assert tree.depth(0) == 0
        assert tree.depth(3) == 3
        assert tree.depth(4) == 1


class TestDetach:
    def test_detach_subtree(self):
        tree = build_sample_tree()
        removed = tree.detach_subtree(2)
        assert removed == {2, 3}
        assert 2 not in tree
        assert 3 not in tree
        assert 1 in tree
        tree.check_invariants()

    def test_detach_root_raises(self):
        tree = build_sample_tree()
        with pytest.raises(ValueError):
            tree.detach_subtree(0)

    def test_detach_missing_raises(self):
        tree = build_sample_tree()
        with pytest.raises(KeyError):
            tree.detach_subtree(42)


class TestCopy:
    def test_copy_is_deep(self):
        tree = build_sample_tree()
        clone = tree.copy()
        clone.detach_subtree(1)
        assert 2 in tree
        assert 2 not in clone
        tree.check_invariants()
        clone.check_invariants()

    def test_repr(self):
        tree = build_sample_tree()
        assert "root=0" in repr(tree)


class TestInvariants:
    def test_invariants_pass_on_valid_tree(self):
        build_sample_tree().check_invariants()

    def test_invariants_catch_distance_violation(self):
        tree = ShortestPathTree(0)
        tree.attach(1, 0, 5.0)
        tree.attach(2, 1, 1.0)  # closer than its parent: invalid SPT
        with pytest.raises(AssertionError):
            tree.check_invariants()
