"""Batch queries against one shared failure state.

The paper's Examples 2-3 describe a *system-wide* failure state (roads
closed by accidents, links currently down) shared by every query, as
opposed to Example 1's per-user failure sets.  For that pattern the
per-query work can be partially hoisted:

* the affected-node set depends only on ``F`` — computed once;
* the lazily recomputed out-weights of each affected node depend only
  on ``F`` — computed at most once per affected node across the whole
  batch (a memo shared by all queries), instead of once per query that
  pops the node.

:class:`FailureStateView` packages a failure set over a DISO-family
oracle and answers any number of ``(s, t)`` queries against it.  It
never writes to the oracle's shared index (the memo is view-local), so
views for different failure states can coexist and run concurrently —
stall avoidance carries over.

:func:`query_many` is the general batched entry point for *per-query*
failure sets: on a frozen DISO/DISO-S engine it routes whole batches
through the vectorized overlay kernel
(:mod:`repro.oracle.batch_kernel`) with bitwise-identical answers; on
every other oracle (including frozen ADISO, whose merged A* search is
float-association-order dependent and therefore not batchable without
changing answers) it degrades to the scalar loop.
"""

from __future__ import annotations

import time
from heapq import heappop, heappush

from repro.graph.digraph import Edge
from repro.oracle.base import (
    INFINITY,
    QueryResult,
    QueryStats,
    normalize_failures,
)
from repro.oracle.diso import DISO
from repro.pathing.bounded import bounded_dijkstra
from repro.workload.queries import Query


def as_query_triple(query) -> tuple[int, int, frozenset | None]:
    """Normalize a :class:`Query` / ``(s, t, failed)`` triple."""
    if isinstance(query, Query):
        return (query.source, query.target, query.failed or None)
    source, target, failed = query
    return (source, target, failed or None)


def query_many(oracle, queries) -> list[float]:
    """Answer a batch of queries on ``oracle``; scalar-loop semantics.

    The batched fast path (the frozen engines' ``query_many``) is used
    when the oracle provides one; otherwise this is exactly the scalar
    loop.  Either way answers are bitwise identical to
    ``[oracle.query(s, t, F) for ...]`` and the first invalid query
    raises just as the loop would.
    """
    batched = getattr(oracle, "query_many", None)
    if callable(batched):
        return batched(queries)
    answers: list[float] = []
    for query in queries:
        source, target, failed = as_query_triple(query)
        answers.append(
            oracle.query(
                source, target, frozenset(failed) if failed else None
            )
        )
    return answers


class FailureStateView:
    """A reusable view of one failure set over a DISO-family oracle.

    Parameters
    ----------
    oracle:
        The underlying oracle (DISO or a subclass sharing its index
        layout).
    failed:
        The failure state shared by all queries through this view.

    Examples
    --------
    >>> from repro import DISO, road_network
    >>> g = road_network(8, 8, seed=1)
    >>> oracle = DISO(g, tau=2)
    >>> view = FailureStateView(oracle, failed={(0, 1)})
    >>> view.query(0, 63) >= oracle.query(0, 63)
    True
    """

    def __init__(
        self,
        oracle: DISO,
        failed: set[Edge] | frozenset[Edge] | None = None,
    ) -> None:
        self.oracle = oracle
        self.failed = normalize_failures(failed)
        stats = QueryStats()
        self.affected: frozenset[int] = frozenset(
            oracle._find_affected_nodes(self.failed, stats)
        )
        self._weight_memo: dict[int, dict[int, float]] = {}

    def _out_weights(self, node: int) -> dict[int, float]:
        """Overlay out-weights of ``node`` under this view's failures."""
        if node not in self.affected:
            return self.oracle.distance_graph.graph.successors(node)
        cached = self._weight_memo.get(node)
        if cached is None:
            cached = self.oracle._recomputed_weights(node, self.failed)
            self._weight_memo[node] = cached
        return cached

    def query(self, source: int, target: int) -> float:
        """Return ``d(source, target, F)`` for this view's ``F``."""
        return self.query_detailed(source, target).distance

    def query_detailed(self, source: int, target: int) -> QueryResult:
        """Answer with instrumentation, reusing the shared failure work."""
        oracle = self.oracle
        oracle._validate_endpoints(source, target)
        stats = QueryStats()
        stats.affected_count = len(self.affected)
        started = time.perf_counter()
        if source == target:
            stats.total_seconds = time.perf_counter() - started
            return QueryResult(distance=0.0, stats=stats)

        access_start = time.perf_counter()
        forward = bounded_dijkstra(
            oracle.graph, source, oracle.transit, self.failed, "out"
        )
        backward = bounded_dijkstra(
            oracle.graph, target, oracle.transit, self.failed, "in"
        )
        stats.access_seconds = time.perf_counter() - access_start
        stats.graph_settled = forward.settled_count + backward.settled_count

        best = forward.dist.get(target, INFINITY)
        best = self._overlay_search(
            forward.access, backward.access, stats, best
        )
        stats.total_seconds = time.perf_counter() - started
        return QueryResult(distance=best, stats=stats)

    def _overlay_search(
        self,
        seeds: dict[int, float],
        into_target: dict[int, float],
        stats: QueryStats,
        upper_bound: float,
    ) -> float:
        """DISO's overlay Dijkstra using the view's weight memo."""
        best = upper_bound
        dist: dict[int, float] = {}
        heap: list[tuple[float, int]] = []
        for node, d in seeds.items():
            dist[node] = d
            heappush(heap, (d, node))
        settled: set[int] = set()
        memo_before = len(self._weight_memo)
        recompute_start = time.perf_counter()

        while heap:
            d, node = heappop(heap)
            if node in settled:
                continue
            if d >= best:
                break
            settled.add(node)
            tail_distance = into_target.get(node)
            if tail_distance is not None and d + tail_distance < best:
                best = d + tail_distance
            for head, weight in self._out_weights(node).items():
                if head in settled or head == node:
                    continue
                candidate = d + weight
                if candidate < dist.get(head, INFINITY):
                    dist[head] = candidate
                    heappush(heap, (candidate, head))
        stats.overlay_settled += len(settled)
        stats.recomputed_nodes += len(self._weight_memo) - memo_before
        stats.recompute_seconds += time.perf_counter() - recompute_start
        return best

    def query_many(
        self,
        pairs: list[tuple[int, int]],
    ) -> list[float]:
        """Answer a batch of ``(source, target)`` pairs."""
        return [self.query(s, t) for s, t in pairs]

    @property
    def memoized_nodes(self) -> int:
        """Affected nodes whose weights have been recomputed so far."""
        return len(self._weight_memo)
