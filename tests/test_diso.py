"""Correctness tests for DISO (Theorem 1: exact answers).

The decisive property: for arbitrary queries (s, t, F) on arbitrary
strongly connected graphs, DISO's answer equals plain Dijkstra on
(V, E \\ F).  Exercised both on structured fixtures and on randomized
graphs via hypothesis.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import QueryError
from repro.graph.digraph import DiGraph
from repro.oracle.diso import DISO
from repro.oracle.base import INFINITY
from repro.pathing.dijkstra import shortest_distance
from util import random_failures_from, random_graph


class TestConstruction:
    def test_default_cover(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        assert 0 < len(oracle.transit) < small_road.number_of_nodes()
        assert oracle.preprocess_seconds > 0

    def test_explicit_transit(self, small_road):
        transit = {0, 50, 100, 143}
        oracle = DISO(small_road, transit=transit)
        assert oracle.transit == frozenset(transit)

    def test_index_entries(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        entries = oracle.index_entries()
        assert entries["distance_graph_nodes"] == len(oracle.transit)
        assert entries["tree_nodes"] > 0
        assert entries["inverted_index_entries"] > 0


class TestQueryBasics:
    def test_same_node(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        assert oracle.query(7, 7) == 0.0
        assert oracle.query(7, 7, failed={(7, 8)}) == 0.0

    def test_unknown_endpoint_raises(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        with pytest.raises(QueryError):
            oracle.query(0, 99_999)
        with pytest.raises(QueryError):
            oracle.query(99_999, 0)

    def test_malformed_failure_raises(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        with pytest.raises(QueryError):
            oracle.query(0, 1, failed={(1, 2, 3)})  # type: ignore[arg-type]

    def test_failure_free_matches_dijkstra(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        for target in (1, 40, 77, 143):
            assert oracle.query(0, target) == pytest.approx(
                shortest_distance(small_road, 0, target)
            )

    def test_unreachable_after_failures(self):
        g = DiGraph([(0, 1, 1.0), (1, 2, 1.0), (1, 3, 1.0)])
        g.add_edge(2, 1, 1.0)
        g.add_edge(3, 1, 1.0)
        g.add_edge(1, 0, 1.0)
        oracle = DISO(g, transit={1})
        assert oracle.query(0, 2, failed={(1, 2)}) == INFINITY

    def test_nonexistent_failed_edges_are_ignored(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        base = oracle.query(0, 100)
        assert oracle.query(0, 100, failed={(-5, -9)}) == pytest.approx(base)

    def test_transit_endpoints(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        transit = sorted(oracle.transit)
        s, t = transit[0], transit[-1]
        assert oracle.query(s, t) == pytest.approx(
            shortest_distance(small_road, s, t)
        )
        failed = {(s, next(iter(small_road.successors(s))))}
        assert oracle.query(s, t, failed) == pytest.approx(
            shortest_distance(small_road, s, t, failed)
        )


class TestStats:
    def test_detailed_result_fields(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        failed = {(0, 1), (50, 51)}
        result = oracle.query_detailed(0, 143, failed)
        assert result.distance == pytest.approx(
            shortest_distance(small_road, 0, 143, failed)
        )
        assert result.stats.total_seconds > 0
        assert result.stats.access_seconds >= 0
        assert result.stats.affected_count >= 0
        assert result.reachable

    def test_affected_count_zero_without_failures(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        result = oracle.query_detailed(0, 143)
        assert result.stats.affected_count == 0
        assert result.stats.recomputed_nodes == 0


class TestStallAvoidance:
    def test_query_does_not_mutate_index(self, small_road):
        """Section 4.2: answering never writes to the shared index."""
        oracle = DISO(small_road, tau=3, theta=1.0)
        overlay_before = {
            (t, h): w for t, h, w in oracle.distance_graph.graph.edges()
        }
        tree_dists_before = {
            root: dict(oracle.trees.tree(root).dist)
            for root in oracle.trees.roots()
        }
        failed = {(0, 1), (20, 21), (100, 101)}
        oracle.query(0, 143, failed)
        overlay_after = {
            (t, h): w for t, h, w in oracle.distance_graph.graph.edges()
        }
        assert overlay_after == overlay_before
        for root in oracle.trees.roots():
            assert oracle.trees.tree(root).dist == tree_dists_before[root]

    def test_repeated_queries_consistent(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        failed = {(10, 11), (60, 61)}
        first = oracle.query(0, 140, failed)
        for _ in range(3):
            assert oracle.query(0, 140, failed) == first
        # Interleave an unrelated query; answers must not drift.
        oracle.query(5, 30)
        assert oracle.query(0, 140, failed) == first


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=20_000),
    fail_seed=st.integers(min_value=0, max_value=20_000),
    fail_count=st.integers(min_value=0, max_value=10),
    s=st.integers(min_value=0, max_value=29),
    t=st.integers(min_value=0, max_value=29),
)
def test_diso_exact_random(seed, fail_seed, fail_count, s, t):
    """Theorem 1 on random graphs with random failure sets."""
    graph = random_graph(seed)
    oracle = DISO(graph, tau=2, theta=4.0)
    failed = random_failures_from(graph, fail_seed, fail_count)
    expected = shortest_distance(graph, s, t, failed)
    assert oracle.query(s, t, failed) == pytest.approx(expected)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5000))
def test_diso_exact_with_many_failures(seed):
    """Stress: a third of all edges failing at once stays exact."""
    graph = random_graph(seed)
    oracle = DISO(graph, tau=2, theta=4.0)
    failed = random_failures_from(graph, seed + 1, 30)
    expected = shortest_distance(graph, 0, 15, failed)
    assert oracle.query(0, 15, failed) == pytest.approx(expected)
