"""Tests for DIMACS and edge-list graph I/O."""

from __future__ import annotations

import io

import pytest

from repro.exceptions import FormatError
from repro.graph.io import (
    graph_from_string,
    read_dimacs,
    read_edge_list,
    write_dimacs,
    write_edge_list,
)


DIMACS_SAMPLE = """\
c example network
p sp 4 5
a 1 2 3
a 2 3 4
a 3 4 5
a 4 1 2
a 1 3 10
"""


class TestDimacsReader:
    def test_parse_sample(self):
        graph = read_dimacs(io.StringIO(DIMACS_SAMPLE))
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 5
        assert graph.weight(1, 2) == 3.0
        assert graph.weight(1, 3) == 10.0

    def test_comments_ignored(self):
        text = "c hello\nc world\np sp 2 1\na 1 2 7\n"
        graph = read_dimacs(io.StringIO(text))
        assert graph.weight(1, 2) == 7.0

    def test_arc_before_problem_raises(self):
        with pytest.raises(FormatError):
            read_dimacs(io.StringIO("a 1 2 3\n"))

    def test_malformed_problem_raises(self):
        with pytest.raises(FormatError):
            read_dimacs(io.StringIO("p max 2 1\n"))

    def test_malformed_arc_raises(self):
        with pytest.raises(FormatError):
            read_dimacs(io.StringIO("p sp 2 1\na 1 2\n"))

    def test_unknown_line_kind_raises(self):
        with pytest.raises(FormatError) as excinfo:
            read_dimacs(io.StringIO("p sp 2 1\nz 1 2 3\n"))
        assert excinfo.value.line_number == 2

    def test_non_numeric_raises(self):
        with pytest.raises(FormatError):
            read_dimacs(io.StringIO("p sp 2 1\na 1 two 3\n"))

    def test_file_roundtrip(self, tmp_path, small_road):
        path = tmp_path / "graph.gr"
        write_dimacs(small_road, path)
        back = read_dimacs(path)
        assert back.number_of_edges() == small_road.number_of_edges()
        for tail, head, weight in small_road.edges():
            assert back.weight(tail, head) == pytest.approx(weight)


class TestEdgeListReader:
    def test_parse_with_weights(self):
        graph = read_edge_list(io.StringIO("0 1 2.5\n1 2 3.5\n"))
        assert graph.weight(0, 1) == 2.5
        assert graph.weight(1, 2) == 3.5

    def test_default_weight(self):
        graph = read_edge_list(io.StringIO("0 1\n"), default_weight=4.0)
        assert graph.weight(0, 1) == 4.0

    def test_comments_and_blank_lines(self):
        graph = read_edge_list(io.StringIO("# snap header\n\n0 1 1.0\n"))
        assert graph.number_of_edges() == 1

    def test_short_line_raises(self):
        with pytest.raises(FormatError):
            read_edge_list(io.StringIO("7\n"))

    def test_non_numeric_raises(self):
        with pytest.raises(FormatError):
            read_edge_list(io.StringIO("a b\n"))

    def test_file_roundtrip(self, tmp_path, small_social):
        path = tmp_path / "edges.tsv"
        write_edge_list(small_social, path)
        back = read_edge_list(path)
        assert back == small_social


class TestGraphFromString:
    def test_edgelist_format(self):
        graph = graph_from_string("0 1 1.0\n1 0 2.0\n")
        assert graph.number_of_edges() == 2

    def test_dimacs_format(self):
        graph = graph_from_string(DIMACS_SAMPLE, fmt="dimacs")
        assert graph.number_of_edges() == 5

    def test_unknown_format_raises(self):
        with pytest.raises(ValueError):
            graph_from_string("", fmt="graphml")
