"""Shared helpers for the benchmark suite.

Benchmarks reproduce the paper's tables and figures at reduced synthetic
scale.  Heavy artefacts (graphs, query batches, oracle indices) are
built once per session and cached; each bench then measures the
interesting operation with pytest-benchmark and writes the formatted
paper-style table to ``benchmarks/results/`` so EXPERIMENTS.md can quote
it.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path

from repro.workload.datasets import load_dataset
from repro.workload.queries import generate_queries

RESULTS_DIR = Path(__file__).parent / "results"

#: Benchmark scale: large enough to show the paper's separations,
#: small enough for a pure-Python suite to finish in minutes.
SCALE = 0.5
SEED = 7
QUERY_COUNT = 20


@lru_cache(maxsize=None)
def dataset(name: str, scale: float = SCALE):
    """Session-cached synthetic dataset."""
    return load_dataset(name, scale=scale, seed=SEED)


@lru_cache(maxsize=None)
def queries(name: str, f_gen: int = 5, p: float = 0.0005, count: int = QUERY_COUNT):
    """Session-cached query batch for a dataset (paper defaults)."""
    graph = dataset(name)
    return tuple(
        generate_queries(graph, count, f_gen=f_gen, p=p, seed=SEED)
    )


def write_result(name: str, text: str) -> Path:
    """Persist a formatted experiment table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    return path


def run_query_batch(oracle, batch) -> float:
    """Answer every query in ``batch``; return the distance checksum.

    Returning a value derived from every answer keeps the work honest
    under aggressive interpreters.
    """
    total = 0.0
    for query in batch:
        distance = oracle.query(query.source, query.target, query.failed)
        if distance != float("inf"):
            total += distance
    return total
