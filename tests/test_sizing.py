"""Tests for index size accounting (Table 6 support)."""

from __future__ import annotations

from repro.baselines.astar_oracle import AStarOracle
from repro.baselines.dijkstra_oracle import DijkstraOracle
from repro.baselines.fddo import FDDOOracle
from repro.oracle.adiso import ADISO
from repro.oracle.diso import DISO
from repro.oracle.sizing import index_size_bytes, index_size_megabytes


class TestSizing:
    def test_dijkstra_has_no_index(self, small_road):
        assert index_size_bytes(DijkstraOracle(small_road)) == 0

    def test_diso_positive(self, small_road):
        assert index_size_bytes(DISO(small_road, tau=3, theta=1.0)) > 0

    def test_adiso_larger_than_diso(self, small_road):
        diso = DISO(small_road, tau=3, theta=1.0)
        adiso = ADISO(
            small_road, tau=3, theta=1.0, num_landmarks=4, seed=1
        )
        assert index_size_bytes(adiso) > index_size_bytes(diso)

    def test_fddo_scales_with_landmarks(self, small_road):
        small = FDDOOracle(small_road, num_landmarks=4, seed=1)
        large = FDDOOracle(small_road, num_landmarks=12, seed=1)
        assert index_size_bytes(large) > index_size_bytes(small)

    def test_megabytes_conversion(self, small_road):
        oracle = AStarOracle(small_road, num_landmarks=4, seed=1)
        assert index_size_megabytes(oracle) == (
            index_size_bytes(oracle) / (1024.0 * 1024.0)
        )

    def test_paper_shape_fddo_largest(self, small_road):
        """Table 6 shape: FDDO > ADISO > DISO at paper-like settings."""
        diso = DISO(small_road, tau=3, theta=1.0)
        adiso = ADISO(
            small_road, tau=3, theta=1.0, num_landmarks=10, seed=1
        )
        fddo = FDDOOracle(small_road, num_landmarks=50, seed=1)
        assert index_size_bytes(fddo) > index_size_bytes(adiso)
        assert index_size_bytes(adiso) > index_size_bytes(diso)
