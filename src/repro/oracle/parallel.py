"""Parallel query processing on one shared oracle index.

The paper's motivating property (Section 1): because the query
algorithms never write to the index, "they can handle multiple queries
in parallel, each of which is processed with a separate thread on the
same index structure", linearly increasing throughput.

:class:`QueryEngine` packages that pattern with two backends:

* ``threads`` — a thread pool over a single in-memory oracle.  In
  CPython the GIL bounds the speed-up for pure-Python workloads, but
  the *correctness* claim — concurrent failure queries on one index, no
  locking, no cross-talk — holds and is what the tests verify.
* ``processes`` — for frozen oracles, the index is written once as a
  binary snapshot (:mod:`repro.oracle.snapshot`) and served by a
  :class:`repro.serving.QueryService` process pool, sidestepping the
  GIL entirely: each worker maps the same read-only file and answers
  its shard with a private interpreter.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ThreadPoolExecutor
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.oracle.base import DistanceSensitivityOracle
from repro.workload.queries import Query


def latency_percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples``; 0.0 when empty.

    >>> latency_percentile([3.0, 1.0, 2.0], 0.5)
    2.0
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


@dataclass
class ThroughputReport:
    """Aggregate outcome of a parallel batch run."""

    answers: list[float]
    wall_seconds: float
    threads: int
    latencies: list[float] = field(default_factory=list)
    #: Per-query error messages (process backend only), aligned with
    #: ``answers``; ``None`` for a query that succeeded.  The thread
    #: backend shares one in-process oracle and lets query exceptions
    #: propagate, so this stays empty there.
    errors: list[str | None] = field(default_factory=list)
    #: Dispatcher-cache hits (process backend with ``cache_size > 0``).
    cache_hits: int = 0
    #: Hits served from hot-pair precomputed entries specifically.
    precomputed_hits: int = 0
    #: Input positions shed by deadline admission control.
    shed_indices: list[int] = field(default_factory=list)
    #: Shard count of the serving plane behind this run; 0 everywhere
    #: except the sharded process backend.
    shards: int = 0
    #: Fraction of the batch stitched across shards (sharded plane).
    cross_shard_ratio: float = 0.0

    @property
    def queries_per_second(self) -> float:
        """Observed throughput."""
        if self.wall_seconds <= 0:
            return float("inf")
        return len(self.answers) / self.wall_seconds

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of the batch served from the dispatcher cache."""
        if not self.answers:
            return 0.0
        return self.cache_hits / len(self.answers)

    @property
    def shed_rate(self) -> float:
        """Fraction of the batch shed by admission control."""
        if not self.answers:
            return 0.0
        return len(self.shed_indices) / len(self.answers)

    @property
    def p50_seconds(self) -> float:
        """Median per-query latency."""
        return latency_percentile(self.latencies, 0.50)

    @property
    def p99_seconds(self) -> float:
        """Nearest-rank 99th percentile per-query latency."""
        return latency_percentile(self.latencies, 0.99)

    @property
    def error_count(self) -> int:
        """Number of queries that came back as per-query errors."""
        return sum(1 for message in self.errors if message is not None)


class QueryEngine:
    """A worker pool answering distance sensitivity queries.

    Parameters
    ----------
    oracle:
        Any oracle whose query path does not mutate shared state —
        true for every oracle in this library except FDDO, which
        performs update-then-rollback per query.  Passing an FDDO
        raises immediately rather than racing silently.
    threads:
        Thread-pool size for the default in-process backend.
    processes:
        When > 0, batches run on a process pool instead: the oracle is
        snapshotted to a temporary file on first use and served by
        ``processes`` snapshot-mapped workers.  Requires a frozen
        oracle (``DISO(...).freeze()`` or ``ADISO(...).freeze()``).
        Call :meth:`close` (or use the engine as a context manager) to
        reap the workers and the temporary snapshot.
    cache_size, hot_pairs, deadline_ms:
        Forwarded to :class:`repro.serving.QueryService` — the
        dispatcher-level result cache, hot-pair precomputation, and
        deadline load-shedding (DESIGN.md §12).  Process backend only:
        passing any of them with ``processes=0`` raises, because the
        thread backend answers in-process and has no dispatcher to put
        a cache in front of.

    Examples
    --------
    >>> from repro import DISO, road_network, generate_queries
    >>> g = road_network(10, 10, seed=1)
    >>> engine = QueryEngine(DISO(g, tau=3), threads=2)
    >>> batch = generate_queries(g, 4, seed=2)
    >>> report = engine.run(batch)
    >>> len(report.answers)
    4
    """

    def __init__(
        self,
        oracle: DistanceSensitivityOracle,
        threads: int = 4,
        processes: int = 0,
        cache_size: int = 0,
        hot_pairs: int = 0,
        deadline_ms: float | None = None,
    ) -> None:
        from repro.baselines.fddo import FDDOOracle

        if isinstance(oracle, FDDOOracle):
            raise ValueError(
                "FDDO mutates its index per query (update-then-rollback) "
                "and cannot serve concurrent queries without locking"
            )
        if threads < 1:
            raise ValueError("threads must be >= 1")
        if processes < 0:
            raise ValueError("processes must be >= 0")
        if not processes and (cache_size or hot_pairs or deadline_ms):
            raise ValueError(
                "cache_size/hot_pairs/deadline_ms configure the serving "
                "dispatcher and need the process backend (processes > 0)"
            )
        if processes:
            from repro.oracle.frozen import FrozenDISO

            if not isinstance(oracle, FrozenDISO):
                raise ValueError(
                    "the process backend serves snapshot files and needs a "
                    "frozen oracle — call .freeze() on the DISO/ADISO first"
                )
        self.oracle = oracle
        self.threads = threads
        self.processes = processes
        self.cache_size = cache_size
        self.hot_pairs = hot_pairs
        self.deadline_ms = deadline_ms
        self._service = None
        self._snapshot_dir = None

    # ------------------------------------------------------------------
    # Process backend plumbing
    # ------------------------------------------------------------------
    def _ensure_service(self):
        """Snapshot the oracle and start the worker pool (first use)."""
        if self._service is None:
            import tempfile
            from pathlib import Path

            from repro.oracle.snapshot import save_snapshot
            from repro.serving import QueryService

            self._snapshot_dir = tempfile.TemporaryDirectory(
                prefix="dso-engine-"
            )
            path = Path(self._snapshot_dir.name) / "oracle.dsosnap"
            save_snapshot(self.oracle, path)
            self._service = QueryService(
                path,
                workers=self.processes,
                cache_size=self.cache_size,
                hot_pairs=self.hot_pairs,
                deadline_ms=self.deadline_ms,
            )
            self._service.start()
        return self._service

    def close(self) -> None:
        """Stop process-backend workers and delete the temp snapshot."""
        if self._service is not None:
            self._service.stop()
            self._service = None
        if self._snapshot_dir is not None:
            self._snapshot_dir.cleanup()
            self._snapshot_dir = None

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def run(self, queries: Sequence[Query]) -> ThroughputReport:
        """Answer ``queries`` concurrently; results keep input order."""
        if self.processes:
            report = self._ensure_service().run(queries)
            return ThroughputReport(
                answers=report.answers,
                wall_seconds=report.wall_seconds,
                threads=self.processes,
                latencies=report.latencies,
                errors=report.errors,
                cache_hits=report.cache_hits,
                precomputed_hits=report.precomputed_hits,
                shed_indices=report.shed_indices,
                shards=report.shards,
                cross_shard_ratio=report.cross_shard_ratio,
            )
        if self.threads == 1:
            # One worker means nothing to schedule: answer in the
            # calling thread.  Routing through a fresh executor would
            # answer every batch on a brand-new pool thread, and the
            # frozen engines key their reusable search arenas on the
            # thread — each run() would re-allocate the whole arena set
            # instead of reusing the caller's.
            return self.run_sequential(queries)
        oracle = self.oracle
        perf = time.perf_counter

        def answer(query: Query) -> tuple[float, float]:
            tick = perf()
            value = oracle.query(query.source, query.target, query.failed)
            return value, perf() - tick

        started = perf()
        with ThreadPoolExecutor(max_workers=self.threads) as pool:
            results = list(pool.map(answer, queries))
        wall = perf() - started
        return ThroughputReport(
            answers=[value for value, _ in results],
            wall_seconds=wall,
            threads=self.threads,
            latencies=[lat for _, lat in results],
        )

    def run_sequential(self, queries: Sequence[Query]) -> ThroughputReport:
        """Single-threaded reference run for comparing throughput."""
        oracle = self.oracle
        perf = time.perf_counter
        answers: list[float] = []
        latencies: list[float] = []
        started = perf()
        for q in queries:
            tick = perf()
            answers.append(oracle.query(q.source, q.target, q.failed))
            latencies.append(perf() - tick)
        wall = perf() - started
        return ThroughputReport(
            answers=answers,
            wall_seconds=wall,
            threads=1,
            latencies=latencies,
        )
