"""The distance graph ``D`` — the first-level index (Definition 4.1).

Given a transit node set ``T``, the distance graph has node set ``T`` and
an edge ``(u, v)`` whenever some path from ``u`` to ``v`` in ``G`` avoids
all other transit nodes; its weight is ``d_hat(u, v, emptyset)``, the
shortest such transit-free distance.  A bounded Dijkstra run from each
transit node enumerates exactly those neighbours with exactly those
weights, so construction is one bounded run per transit node — the
``O((|V| + c_B) |T|)`` preprocessing of the paper's cost analysis.

By Lemma 1 the weighting scheme guarantees that shortest distances *on*
``D`` equal shortest distances on ``G`` between transit nodes, also under
failures once affected edge weights are lazily recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import PreprocessingError
from repro.graph.digraph import DiGraph
from repro.pathing.bounded import bounded_dijkstra
from repro.pathing.spt import ShortestPathTree


@dataclass
class DistanceGraph:
    """The first-level index: overlay graph over the transit node set.

    Attributes
    ----------
    graph:
        The overlay :class:`DiGraph` ``D`` with transit-free shortest
        distances as weights.
    transit:
        The transit node set ``T`` (== the node set of ``graph``).
    """

    graph: DiGraph
    transit: frozenset[int]

    @property
    def num_nodes(self) -> int:
        """``|T|`` — the "|C|" column of Tables 3 and 4."""
        return self.graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        """``|E_D|`` — the overlay edge count of Tables 3 and 4."""
        return self.graph.number_of_edges()

    def out_edges(self, node: int) -> dict[int, float]:
        """Out-edges of ``node`` on ``D`` as ``{head: weight}``."""
        return self.graph.successors(node)

    def __contains__(self, node: int) -> bool:
        return node in self.transit


def validate_transit(graph: DiGraph, transit) -> frozenset[int]:
    """Validate a transit node set against ``graph``; return it frozen.

    Raises
    ------
    PreprocessingError
        If ``transit`` is empty or contains unknown nodes.
    """
    if not transit:
        raise PreprocessingError("transit node set must not be empty")
    for node in transit:
        if not graph.has_node(node):
            raise PreprocessingError(
                f"transit node {node!r} is not in the input graph"
            )
    return frozenset(transit)


def landmark_tree_unit(
    graph: DiGraph,
    root: int,
    transit: frozenset[int],
) -> tuple[ShortestPathTree, list[tuple[int, float]]]:
    """The per-landmark work unit: one bounded Dijkstra from ``root``.

    Yields both halves of the index that run produces — the bounded
    shortest path tree ``G_root`` (second-level index) and the
    distance-graph out-edges of ``root`` (transit nodes settled as
    leaves, with their transit-free distances, in settle order).

    Independent across roots, which is what makes construction
    embarrassingly parallel: the build plane
    (:mod:`repro.build.coordinator`) ships exactly this function's
    output per landmark as a shard.
    """
    result = bounded_dijkstra(graph, root, transit, direction="out")
    out_edges = [
        (v, distance) for v, distance in result.access.items() if v != root
    ]
    return result.to_tree(), out_edges


def assemble_distance_graph(
    transit: frozenset[int],
    out_edges: dict[int, list[tuple[int, float]]],
) -> DistanceGraph:
    """Merge per-landmark out-edge lists into the overlay ``D``.

    ``out_edges`` maps each transit node to the edge list its
    :func:`landmark_tree_unit` produced.  Merge order is sorted landmark
    order — the determinism contract of the parallel build plane: the
    assembled overlay's content depends only on the edge values, never
    on which worker finished first.
    """
    overlay = DiGraph()
    overlay.add_nodes(transit)
    for u in sorted(transit):
        for v, distance in out_edges[u]:
            overlay.add_edge(u, v, distance)
    return DistanceGraph(graph=overlay, transit=transit)


def build_distance_graph(
    graph: DiGraph,
    transit: set[int] | frozenset[int],
) -> tuple[DistanceGraph, dict[int, ShortestPathTree]]:
    """Construct ``D`` and all bounded shortest path trees in one pass.

    For each transit node ``u`` one :func:`landmark_tree_unit` run
    yields both the bounded shortest path tree ``G_u`` and the
    distance-graph out-edges of ``u``.

    Returns
    -------
    (distance_graph, trees):
        The overlay and ``{u: G_u}`` for every transit node.

    Raises
    ------
    PreprocessingError
        If ``transit`` is empty or contains unknown nodes.
    """
    transit_frozen = validate_transit(graph, transit)
    trees: dict[int, ShortestPathTree] = {}
    edges: dict[int, list[tuple[int, float]]] = {}
    for u in sorted(transit_frozen):
        trees[u], edges[u] = landmark_tree_unit(graph, u, transit_frozen)
    return assemble_distance_graph(transit_frozen, edges), trees


def verify_distance_graph(
    graph: DiGraph,
    oracle_overlay: DistanceGraph,
) -> list[str]:
    """Cross-check an overlay against Definition 4.1; return violations.

    Checks, for every overlay edge ``(u, v)``, that the stored weight
    equals the shortest transit-free distance recomputed from scratch.
    Intended for tests; quadratic in ``|T|`` in the worst case.
    """
    problems: list[str] = []
    transit = oracle_overlay.transit
    for u in sorted(transit):
        fresh = bounded_dijkstra(graph, u, transit, direction="out")
        stored = oracle_overlay.out_edges(u)
        fresh_neighbors = {v: d for v, d in fresh.access.items() if v != u}
        if set(stored) != set(fresh_neighbors):
            problems.append(
                f"node {u}: overlay neighbours {sorted(stored)} != "
                f"recomputed {sorted(fresh_neighbors)}"
            )
            continue
        for v, weight in stored.items():
            if abs(weight - fresh_neighbors[v]) > 1e-9:
                problems.append(
                    f"edge ({u}, {v}): stored weight {weight} != "
                    f"recomputed {fresh_neighbors[v]}"
                )
    return problems
