"""Shared helpers for property tests (importable, unlike conftest)."""

from __future__ import annotations

import random

from repro.graph.digraph import DiGraph


def random_graph(seed: int, n: int = 30, extra: int = 60) -> DiGraph:
    """Strongly connected random weighted digraph for property tests.

    A random Hamiltonian cycle guarantees strong connectivity; ``extra``
    additional random edges are layered on top.  Deterministic per seed.
    """
    rng = random.Random(seed)
    graph = DiGraph()
    order = list(range(n))
    rng.shuffle(order)
    for i in range(n):
        graph.add_edge(order[i], order[(i + 1) % n], rng.random() * 4 + 0.1)
    added = 0
    while added < extra:
        a = rng.randrange(n)
        b = rng.randrange(n)
        if a != b and not graph.has_edge(a, b):
            graph.add_edge(a, b, rng.random() * 4 + 0.1)
            added += 1
    return graph


def exact_random_graph(seed: int, n: int = 30, extra: int = 60) -> DiGraph:
    """Like :func:`random_graph` but with small *integer* weights.

    Integer weights keep float addition exact, so answers composed from
    partial sums in any association order (the sharded stitcher) stay
    bitwise-equal to a single-pass computation — the precondition of
    the sharded parity suite.
    """
    rng = random.Random(seed)
    graph = DiGraph()
    order = list(range(n))
    rng.shuffle(order)
    for i in range(n):
        graph.add_edge(order[i], order[(i + 1) % n], float(rng.randint(1, 8)))
    added = 0
    while added < extra:
        a = rng.randrange(n)
        b = rng.randrange(n)
        if a != b and not graph.has_edge(a, b):
            graph.add_edge(a, b, float(rng.randint(1, 8)))
            added += 1
    return graph


def random_failures_from(
    graph: DiGraph, seed: int, count: int
) -> set[tuple[int, int]]:
    """Pick ``count`` random existing edges as a failure set."""
    rng = random.Random(seed)
    edges = sorted((t, h) for t, h, _ in graph.edges())
    count = min(count, len(edges) - 1)
    return set(rng.sample(edges, count))
