"""DSO2xx — multiprocessing-safety rules.

The build and serving planes run under both fork and spawn start
methods (CI exercises both).  Spawn pickles everything that crosses a
``Process``/``Pipe`` boundary, so lambdas and nested functions that
happen to work under fork explode only in the spawn matrix — the
worst kind of CI flake.  Module-global mutable state is the mirror
hazard: a write made inside a worker process is invisible to the
parent and to sibling workers, so code that appears to share state
under threads silently diverges under processes.
"""

from __future__ import annotations

import ast

from repro.analysis.rules import Rule

#: Callables that hand their argument to another process.
_DISPATCH_METHODS = frozenset({
    "submit", "apply_async", "map_async", "starmap", "starmap_async",
    "apply", "imap", "imap_unordered",
})


class UnpicklableDispatchRule(Rule):
    """DSO201: a lambda or locally-defined function crosses a process
    boundary (``Process(target=...)``, pool dispatch, ``conn.send``).

    Fork inherits closures by memory copy; spawn pickles them and
    pickle rejects lambdas and nested functions by name lookup.  The
    fix is a module-level function (plus a picklable args tuple), which
    is also what the serving/build workers already do.
    """

    rule_id = "DSO201"
    severity = "error"
    summary = "lambda/nested function passed across a process boundary"

    def __init__(self, context) -> None:
        super().__init__(context)
        self._local_functions: set[str] = set()
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for inner in ast.walk(node):
                    if (
                        inner is not node
                        and isinstance(
                            inner, (ast.FunctionDef, ast.AsyncFunctionDef)
                        )
                    ):
                        self._local_functions.add(inner.name)

    def _is_unpicklable_callable(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Lambda):
            return True
        return (
            isinstance(node, ast.Name) and node.id in self._local_functions
        )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        target_args: list[ast.expr] = []
        if (
            isinstance(func, ast.Name) and func.id == "Process"
        ) or (
            isinstance(func, ast.Attribute) and func.attr == "Process"
        ):
            target_args = [
                keyword.value
                for keyword in node.keywords
                if keyword.arg == "target"
            ]
        elif (
            isinstance(func, ast.Attribute)
            and func.attr in _DISPATCH_METHODS
            and node.args
        ):
            target_args = [node.args[0]]
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "send"
            and node.args
        ):
            # Anything containing a lambda inside a pipe message dies
            # under spawn when the payload is pickled.
            for argument in node.args:
                for inner in ast.walk(argument):
                    if isinstance(inner, ast.Lambda):
                        target_args.append(inner)
                        break
        for candidate in target_args:
            if self._is_unpicklable_callable(candidate):
                self.report(
                    candidate,
                    "unpicklable callable crosses a process boundary; "
                    "works under fork, breaks under spawn — use a "
                    "module-level function",
                )
        self.generic_visit(node)


class MutableGlobalWriteRule(Rule):
    """DSO202: a function declares ``global X`` and assigns it.

    Inside a worker process the write mutates the worker's copy only;
    the parent and every sibling keep the old value, and fork/spawn
    disagree about what the initial value even was.  State that must
    travel between processes goes through the message protocol;
    process-local caches belong on an object passed explicitly.
    """

    rule_id = "DSO202"
    severity = "error"
    summary = "module-global mutable state written inside a function"

    def _check_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        declared: set[str] = set()
        for statement in ast.walk(node):
            if isinstance(statement, ast.Global):
                declared.update(statement.names)
        if declared:
            for statement in ast.walk(node):
                targets: list[ast.expr] = []
                if isinstance(statement, ast.Assign):
                    targets = list(statement.targets)
                elif isinstance(statement, (ast.AugAssign, ast.AnnAssign)):
                    targets = [statement.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Name)
                        and target.id in declared
                    ):
                        self.report(
                            statement,
                            f"write to module-global {target.id!r} does "
                            "not propagate across processes; pass state "
                            "explicitly or use the message protocol",
                        )
        self.generic_visit(node)

    visit_FunctionDef = _check_function
    visit_AsyncFunctionDef = _check_function
