"""Multi-core serving plane: process-pool query service over snapshots.

One preprocessed oracle, frozen and saved as a binary snapshot
(:mod:`repro.oracle.snapshot`), is mapped read-only by N worker
processes; a dispatcher shards query batches across them over pipes and
aggregates answers with latency statistics.  Because queries never
write to the index (the paper's stall-avoidance design), workers share
the mapped pages without any locking — throughput scales with cores
instead of being GIL-capped like the thread pool in
:class:`repro.oracle.parallel.QueryEngine`.
"""

from repro.serving.admission import DeadlineAdmission
from repro.serving.cache import (
    HotPairTracker,
    ResultCache,
    canonical_query_key,
)
from repro.serving.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.serving.ring import ResultRing
from repro.serving.service import QueryService, ServeReport, WorkerStats
from repro.serving.sharded import ShardedQueryService
from repro.serving.worker import QUERY_ERROR, worker_main

__all__ = [
    "QueryService",
    "ServeReport",
    "ShardedQueryService",
    "WorkerStats",
    "ResultRing",
    "ResultCache",
    "HotPairTracker",
    "DeadlineAdmission",
    "canonical_query_key",
    "worker_main",
    "QUERY_ERROR",
    "FaultPlan",
    "FaultSpec",
    "FaultInjector",
    "InjectedFault",
]
