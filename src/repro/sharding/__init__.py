"""Sharded serving plane: partition cuts, per-shard builds, stitching.

The pipeline (DESIGN.md §13):

1. :func:`make_shard_plan` cuts the graph with one of the existing
   partitioners and derives the sorted border/cross-edge overlay.
2. :func:`build_sharded` builds a frozen DISO per shard plus the
   failure-free border-distance matrices (inline or through the
   parallel build plane).
3. :func:`save_sharded_snapshot` / :func:`load_sharded_snapshot`
   persist the result as a manifest + per-shard DSOSNAP1 directory.
4. :class:`ShardedOracle` (or the sharded serving plane in
   :mod:`repro.serving.sharded`) answers queries by stitching
   shard-local legs over the border overlay.
"""

from repro.sharding.build import (
    ShardedBuild,
    build_sharded,
    compute_border_matrix,
)
from repro.sharding.frozen_overlay import (
    FrozenOverlay,
    compile_overlay_csr,
    compute_border_closure,
)
from repro.sharding.oracle import (
    BorderOverlay,
    ShardedOracle,
    stitch_over_borders,
)
from repro.sharding.plan import PARTITION_METHODS, ShardPlan, make_shard_plan
from repro.sharding.snapshot import (
    MANIFEST_NAME,
    SHARD_MAGIC,
    load_frozen_overlay,
    load_shard_plan_overlay,
    load_sharded_snapshot,
    save_sharded_snapshot,
    sharded_snapshot_info,
)

__all__ = [
    "MANIFEST_NAME",
    "PARTITION_METHODS",
    "SHARD_MAGIC",
    "BorderOverlay",
    "FrozenOverlay",
    "ShardPlan",
    "ShardedBuild",
    "ShardedOracle",
    "build_sharded",
    "compile_overlay_csr",
    "compute_border_closure",
    "compute_border_matrix",
    "load_frozen_overlay",
    "load_shard_plan_overlay",
    "load_sharded_snapshot",
    "make_shard_plan",
    "save_sharded_snapshot",
    "sharded_snapshot_info",
    "stitch_over_borders",
]
