"""Table 2 — dataset statistics.

Reports |V|, |E|, average degree, maximum degree, and family per
registered dataset, exactly the columns of the paper's Table 2.  Serves
to document how the synthetic stand-ins reproduce the structural regime
of the originals (degree bands in particular).
"""

from __future__ import annotations

from repro.experiments.report import human_count, render_table
from repro.workload.datasets import DATASETS, dataset_statistics, load_dataset


def run_table2(
    datasets: tuple[str, ...] | None = None,
    scale: float = 0.5,
    seed: int = 7,
) -> list[dict[str, object]]:
    """Generate every dataset and collect its statistics row."""
    if datasets is None:
        datasets = tuple(DATASETS)
    rows: list[dict[str, object]] = []
    for name in datasets:
        spec = DATASETS[name]
        graph = load_dataset(name, scale=scale, seed=seed)
        stats = dataset_statistics(graph)
        stats["dataset"] = name
        stats["kind"] = spec.kind
        rows.append(stats)
    return rows


def format_table2(rows: list[dict[str, object]]) -> str:
    """Render :func:`run_table2` rows like the paper's Table 2."""
    display = [
        {
            "dataset": row["dataset"],
            "nodes": human_count(row["nodes"]),
            "edges": human_count(row["edges"]),
            "avg_degree": f"{row['avg_degree']:.1f}",
            "max_degree": str(row["max_degree"]),
            "kind": row["kind"],
        }
        for row in rows
    ]
    return render_table(
        display,
        columns=[
            ("dataset", "Dataset"),
            ("nodes", "|V|"),
            ("edges", "|E|"),
            ("avg_degree", "Avg. deg."),
            ("max_degree", "Max deg."),
            ("kind", "Type"),
        ],
        title="Table 2: dataset statistics (synthetic stand-ins)",
    )
