"""Experiment harness: timing and accuracy measurement over query batches.

Mirrors the paper's measurement protocol (Section 7.1): every number is
an average over a batch of generated queries (the paper uses 100), query
time is wall-clock per query, accuracy of approximate methods is the
relative error against the exact Dijkstra answer, and preprocessing time
is the oracle constructor's wall clock.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.graph.digraph import DiGraph
from repro.oracle.base import INFINITY, DistanceSensitivityOracle
from repro.pathing.dijkstra import shortest_distance
from repro.workload.queries import Query

OracleFactory = Callable[[DiGraph], DistanceSensitivityOracle]


@dataclass
class BatchResult:
    """Aggregated measurements of one oracle over one query batch.

    Times are in milliseconds per query, matching the units of the
    paper's Tables 3-5.
    """

    method: str
    preprocess_seconds: float
    query_ms: float
    access_ms: float
    recompute_ms: float
    affected_avg: float
    error_pct: float
    fallback_count: int
    query_count: int
    distances: list[float] = field(default_factory=list)
    query_seconds: list[float] = field(default_factory=list)


def exact_answers(
    graph: DiGraph,
    queries: Sequence[Query],
) -> list[float]:
    """Ground-truth distances for a batch (plain Dijkstra per query)."""
    return [
        shortest_distance(graph, q.source, q.target, set(q.failed))
        for q in queries
    ]


def run_batch(
    oracle: DistanceSensitivityOracle,
    queries: Sequence[Query],
    truth: Sequence[float] | None = None,
) -> BatchResult:
    """Run ``queries`` through ``oracle`` and aggregate measurements.

    Parameters
    ----------
    oracle:
        A constructed oracle (its ``preprocess_seconds`` is reported).
    queries:
        The query batch.
    truth:
        Optional precomputed exact answers (one per query) for error
        computation; pass None to skip accuracy accounting.
    """
    total_time = 0.0
    access_time = 0.0
    recompute_time = 0.0
    affected_total = 0
    fallbacks = 0
    error_sum = 0.0
    error_count = 0
    distances: list[float] = []
    query_seconds: list[float] = []

    for index, query in enumerate(queries):
        started = time.perf_counter()
        result = oracle.query_detailed(query.source, query.target, query.failed)
        elapsed = time.perf_counter() - started
        total_time += elapsed
        query_seconds.append(elapsed)
        distances.append(result.distance)
        access_time += result.stats.access_seconds
        recompute_time += result.stats.recompute_seconds
        affected_total += result.stats.affected_count
        fallbacks += int(result.stats.used_fallback)
        if truth is not None:
            exact = truth[index]
            if exact > 0 and exact < INFINITY and result.distance < INFINITY:
                error_sum += max(0.0, (result.distance - exact) / exact)
                error_count += 1

    count = max(1, len(queries))
    return BatchResult(
        method=oracle.name,
        preprocess_seconds=oracle.preprocess_seconds,
        query_ms=1000.0 * total_time / count,
        access_ms=1000.0 * access_time / count,
        recompute_ms=1000.0 * recompute_time / count,
        affected_avg=affected_total / count,
        error_pct=100.0 * error_sum / max(1, error_count),
        fallback_count=fallbacks,
        query_count=len(queries),
        query_seconds=query_seconds,
    )


def compare_methods(
    graph: DiGraph,
    factories: dict[str, OracleFactory],
    queries: Sequence[Query],
    with_truth: bool = True,
) -> dict[str, BatchResult]:
    """Build each oracle, run the batch, return results keyed by method.

    Construction failures propagate — an experiment with a broken method
    should fail loudly, not silently drop a row.
    """
    truth = exact_answers(graph, queries) if with_truth else None
    results: dict[str, BatchResult] = {}
    for method, factory in factories.items():
        oracle = factory(graph)
        batch = run_batch(oracle, queries, truth)
        batch.method = method
        results[method] = batch
    return results


def time_call(fn: Callable[[], object]) -> tuple[object, float]:
    """Call ``fn`` and return ``(result, elapsed_seconds)``."""
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started
