"""Rendering experiment rows as paper-style text tables.

The paper prints counts with k/M suffixes ("42.96k", "0.31M") and times
in milliseconds or seconds; these helpers mimic that so measured tables
can be eyeballed against the paper's directly.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def human_count(value: float) -> str:
    """Format a count in the paper's k/M/G style."""
    if value is None:
        return "-"
    if value >= 1e9:
        return f"{value / 1e9:.2f}G"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.2f}k"
    if value == int(value):
        return str(int(value))
    return f"{value:.2f}"


def human_ms(value: float) -> str:
    """Format a duration given in milliseconds, k-suffixed like the paper."""
    if value is None:
        return "-"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.2f}k"
    return f"{value:.2f}"


def human_seconds(value: float) -> str:
    """Format a duration given in seconds."""
    if value is None:
        return "-"
    if value >= 1e3:
        return f"{value / 1e3:.2f}k"
    return f"{value:.2f}"


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[tuple[str, str]],
    title: str | None = None,
) -> str:
    """Render ``rows`` as an aligned text table.

    Parameters
    ----------
    rows:
        Mappings from column key to already-formatted cell values.
    columns:
        ``(key, header)`` pairs in display order.
    title:
        Optional title line.
    """
    headers = [header for _, header in columns]
    table: list[list[str]] = [headers]
    for row in rows:
        table.append([str(row.get(key, "-")) for key, _ in columns])
    widths = [
        max(len(line[i]) for line in table) for i in range(len(columns))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    for line_index, line in enumerate(table):
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(line))
        )
        if line_index == 0:
            lines.append(separator)
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    fmt=human_ms,
) -> str:
    """Render figure-style data (one line per method over an x sweep)."""
    columns = [("__x", x_label)] + [(name, name) for name in series]
    rows = []
    for i, x in enumerate(x_values):
        row: dict[str, object] = {"__x": str(x)}
        for name, values in series.items():
            row[name] = fmt(values[i]) if i < len(values) else "-"
        rows.append(row)
    return render_table(rows, columns, title=title)
