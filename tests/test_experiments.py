"""Smoke tests for the experiment layer: every table/figure runs end to
end at tiny scale and produces the paper's row/series structure."""

from __future__ import annotations

import pytest

from repro.baselines.dijkstra_oracle import DijkstraOracle
from repro.experiments.accuracy import format_accuracy, run_accuracy
from repro.experiments.figure4 import format_figure4, run_figure4
from repro.experiments.figure5 import format_figure5, run_figure5
from repro.experiments.figure6 import format_figure6, run_figure6
from repro.experiments.harness import (
    compare_methods,
    exact_answers,
    run_batch,
    time_call,
)
from repro.experiments.report import (
    human_count,
    human_ms,
    human_seconds,
    render_series,
    render_table,
)
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.table3 import format_table3, run_table3
from repro.experiments.table4 import format_table4, run_table4
from repro.experiments.table5 import format_table5, run_table5
from repro.experiments.table6 import format_table6, run_table6
from repro.oracle.diso import DISO
from repro.workload.queries import generate_queries

TINY = dict(scale=0.25, seed=7)


class TestHarness:
    def test_run_batch_measures(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        queries = generate_queries(small_road, 5, f_gen=2, p=0.001, seed=1)
        truth = exact_answers(small_road, queries)
        batch = run_batch(oracle, queries, truth)
        assert batch.query_count == 5
        assert batch.query_ms > 0
        assert batch.error_pct == pytest.approx(0.0)  # DISO is exact

    def test_compare_methods(self, small_road):
        queries = generate_queries(small_road, 4, f_gen=2, p=0.0, seed=1)
        results = compare_methods(
            small_road,
            {
                "DISO": lambda g: DISO(g, tau=3, theta=1.0),
                "DI": DijkstraOracle,
            },
            queries,
        )
        assert set(results) == {"DISO", "DI"}
        assert results["DISO"].method == "DISO"

    def test_time_call(self):
        value, seconds = time_call(lambda: 42)
        assert value == 42
        assert seconds >= 0


class TestReportFormatting:
    def test_human_count(self):
        assert human_count(42) == "42"
        assert human_count(42_960) == "42.96k"
        assert human_count(310_000) == "310.00k"
        assert human_count(12_930_000) == "12.93M"
        assert human_count(1_080_000_000) == "1.08G"
        assert human_count(None) == "-"

    def test_human_ms(self):
        assert human_ms(14.713) == "14.71"
        assert human_ms(1170.0) == "1.17k"
        assert human_ms(120_000.0) == "120.00k"

    def test_human_seconds(self):
        assert human_seconds(3.37) == "3.37"
        assert human_seconds(6520.0) == "6.52k"

    def test_render_table_alignment(self):
        text = render_table(
            [{"a": "1", "b": "x"}, {"a": "22", "b": "yy"}],
            [("a", "A"), ("b", "B")],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[1]
        assert all(len(line) == len(lines[1]) for line in lines[2:])

    def test_render_series(self):
        text = render_series(
            "fig", "x", [1, 2], {"m": [10.0, 20.0]}
        )
        assert "fig" in text
        assert "10.00" in text


class TestTables:
    def test_table2(self):
        rows = run_table2(datasets=("NY", "DBLP"), **TINY)
        assert len(rows) == 2
        out = format_table2(rows)
        assert "NY" in out and "DBLP" in out

    def test_table3(self):
        rows = run_table3(
            datasets=("NY",), query_count=4, methods=("ISC", "HPC"), **TINY
        )
        assert {row["method"] for row in rows} == {"ISC", "HPC"}
        out = format_table3(rows)
        assert "|E_D|" in out

    def test_table4(self):
        rows = run_table4(
            datasets=("NY",),
            parts=8,
            query_count=4,
            methods=("ISC", "UNIFORM"),
            **TINY,
        )
        assert len(rows) == 2
        assert "QT(ms)" in format_table4(rows)

    def test_table5(self):
        rows = run_table5(
            datasets=("NY",), query_count=3, fddo_landmarks=6, **TINY
        )
        methods = {row["method"] for row in rows}
        assert {"DISO-", "DISO", "ADISO", "ADISO-P", "FDDO", "A*", "DI"} == (
            methods
        )
        exact_rows = [
            r for r in rows if r["method"] in ("DISO", "ADISO", "A*", "DI")
        ]
        assert all(r["error_pct"] == pytest.approx(0.0) for r in exact_rows)
        assert "Prep(s)" in format_table5(rows)

    def test_table5_social_uses_diso_s(self):
        rows = run_table5(
            datasets=("DBLP",), query_count=3, fddo_landmarks=6, **TINY
        )
        methods = {row["method"] for row in rows}
        assert "DISO-S" in methods
        assert "ADISO-P" not in methods

    def test_table6(self):
        rows = run_table6(datasets=("NY",), fddo_landmarks=6, **TINY)
        sizes = {row["method"]: row["size_mb"] for row in rows}
        assert set(sizes) == {"DISO", "ADISO", "FDDO", "A*"}
        assert all(size > 0 for size in sizes.values())
        # The paper's shape: ADISO = DISO + landmarks.
        assert sizes["ADISO"] > sizes["DISO"]
        assert "Index size" in format_table6(rows)


class TestFigures:
    def test_figure4(self):
        data = run_figure4(
            dataset="NY", taus=(2, 3), query_count=3, **TINY
        )
        assert data["taus"] == [2, 3]
        assert len(data["query_ms"]["ISC"]) == 2
        assert "Figure 4a" in format_figure4(data)

    def test_figure5(self):
        data = run_figure5(
            dataset="NY",
            landmark_counts=(2, 4),
            query_count=3,
            methods=("SLS", "RAND"),
            **TINY,
        )
        assert len(data["query_ms"]["SLS"]) == 2
        assert "Figure 5a" in format_figure5(data)

    def test_figure6(self):
        data = run_figure6(
            dataset="NY",
            f_gen_values=(0, 3),
            p_values=(0.0, 0.002),
            query_count=3,
            methods=("DISO", "DISO-", "DI"),
            **TINY,
        )
        assert len(data["query_ms_vs_fgen"]["DISO"]) == 2
        assert len(data["query_ms_vs_p"]["DISO-"]) == 2
        assert "f_gen" in format_figure6(data)

    def test_accuracy(self):
        rows = run_accuracy(
            query_count=3, fddo_landmarks=6, **TINY
        )
        methods = [row["method"] for row in rows]
        assert methods.count("FDDO") == 2
        assert "ADISO-P" in methods and "DISO-S" in methods
        assert all(row["error_pct"] >= 0 for row in rows)
        assert "Avg rel err" in format_accuracy(rows)
