"""Tests for permanent-update maintenance of DISO/ADISO indices.

The acceptance criterion throughout: after any sequence of updates, the
maintained oracle answers every query exactly like a freshly built
oracle over the updated graph — verified against plain Dijkstra.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import EdgeNotFoundError, GraphError
from repro.oracle.adiso import ADISO
from repro.oracle.diso import DISO
from repro.oracle.maintenance import OracleMaintainer
from repro.overlay.distance_graph import verify_distance_graph
from repro.pathing.dijkstra import shortest_distance
from util import random_graph


def assert_oracle_exact(oracle, graph, pairs, failed=None):
    for s, t in pairs:
        expected = shortest_distance(graph, s, t, failed)
        assert oracle.query(s, t, failed) == pytest.approx(expected)


PAIRS = [(0, 25), (3, 18), (29, 1), (7, 7)]


class TestDeleteEdge:
    def test_delete_and_query(self):
        graph = random_graph(1)
        oracle = DISO(graph, tau=2, theta=4.0)
        maintainer = OracleMaintainer(oracle)
        edge = next(iter(sorted(graph.edge_set())))
        maintainer.delete_edge(*edge)
        assert not graph.has_edge(*edge)
        assert_oracle_exact(oracle, graph, PAIRS)

    def test_delete_missing_raises(self):
        graph = random_graph(2)
        maintainer = OracleMaintainer(DISO(graph, tau=2, theta=4.0))
        with pytest.raises(EdgeNotFoundError):
            maintainer.delete_edge(-1, -2)

    def test_overlay_stays_consistent(self):
        graph = random_graph(3)
        oracle = DISO(graph, tau=2, theta=4.0)
        maintainer = OracleMaintainer(oracle)
        for edge in sorted(graph.edge_set())[:5]:
            if graph.has_edge(*edge):
                maintainer.delete_edge(*edge)
        assert verify_distance_graph(graph, oracle.distance_graph) == []

    def test_rebuild_counter(self):
        graph = random_graph(4)
        oracle = DISO(graph, tau=2, theta=4.0)
        maintainer = OracleMaintainer(oracle)
        # Delete a tree edge of some stored tree: must rebuild >= 1 tree.
        root = next(iter(oracle.trees.roots()))
        tree = oracle.trees.tree(root)
        edge = next(iter(tree.tree_edges()))
        maintainer.delete_edge(*edge)
        assert maintainer.rebuilt_trees >= 1


class TestInsertEdge:
    def test_insert_and_query(self):
        graph = random_graph(5)
        oracle = DISO(graph, tau=2, theta=4.0)
        maintainer = OracleMaintainer(oracle)
        # A new cheap shortcut between two far nodes.
        maintainer.insert_edge(0, 15, 0.01)
        assert_oracle_exact(oracle, graph, PAIRS)

    def test_insert_existing_raises(self):
        graph = random_graph(6)
        maintainer = OracleMaintainer(DISO(graph, tau=2, theta=4.0))
        edge = next(iter(sorted(graph.edge_set())))
        with pytest.raises(GraphError):
            maintainer.insert_edge(edge[0], edge[1], 1.0)

    def test_insert_improving_edge_updates_overlay(self):
        graph = random_graph(7)
        oracle = DISO(graph, tau=2, theta=4.0)
        maintainer = OracleMaintainer(oracle)
        transit = sorted(oracle.transit)
        u, v = transit[0], transit[1]
        before = oracle.query(u, v)
        if not graph.has_edge(u, v):
            maintainer.insert_edge(u, v, before / 10)
            assert oracle.query(u, v) == pytest.approx(
                shortest_distance(graph, u, v)
            )


class TestChangeWeight:
    def test_increase_and_query(self):
        graph = random_graph(8)
        oracle = DISO(graph, tau=2, theta=4.0)
        maintainer = OracleMaintainer(oracle)
        edge = next(iter(sorted(graph.edge_set())))
        maintainer.change_weight(edge[0], edge[1], 50.0)
        assert_oracle_exact(oracle, graph, PAIRS)

    def test_decrease_and_query(self):
        graph = random_graph(9)
        oracle = DISO(graph, tau=2, theta=4.0)
        maintainer = OracleMaintainer(oracle)
        edge = next(iter(sorted(graph.edge_set())))
        maintainer.change_weight(edge[0], edge[1], 0.001)
        assert_oracle_exact(oracle, graph, PAIRS)

    def test_missing_edge_raises(self):
        graph = random_graph(10)
        maintainer = OracleMaintainer(DISO(graph, tau=2, theta=4.0))
        with pytest.raises(EdgeNotFoundError):
            maintainer.change_weight(-1, -2, 1.0)


class TestADISOMaintenance:
    def test_landmarks_refreshed(self):
        graph = random_graph(11)
        oracle = ADISO(graph, tau=2, theta=4.0, num_landmarks=3, seed=1)
        maintainer = OracleMaintainer(oracle)
        edge = next(iter(sorted(graph.edge_set())))
        maintainer.delete_edge(*edge)
        assert maintainer.landmark_refreshes == 1
        assert_oracle_exact(oracle, graph, PAIRS)

    def test_adiso_exact_after_mixed_updates(self):
        graph = random_graph(12)
        oracle = ADISO(graph, tau=2, theta=4.0, num_landmarks=3, seed=1)
        maintainer = OracleMaintainer(oracle)
        edges = sorted(graph.edge_set())
        maintainer.delete_edge(*edges[0])
        maintainer.change_weight(*edges[5], 25.0)
        maintainer.insert_edge(2, 27, 0.05)
        assert_oracle_exact(oracle, graph, PAIRS)
        # Queries with temporary failures still exact after maintenance.
        failed = {edges[10]}
        assert_oracle_exact(oracle, graph, PAIRS, failed)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5000),
    ops_seed=st.integers(min_value=0, max_value=5000),
)
def test_maintenance_matches_fresh_oracle(seed, ops_seed):
    """After random updates, answers equal a freshly built oracle's."""
    import random as _random

    graph = random_graph(seed)
    oracle = DISO(graph, tau=2, theta=4.0)
    maintainer = OracleMaintainer(oracle)
    rng = _random.Random(ops_seed)
    for _ in range(5):
        op = rng.choice(["delete", "increase", "decrease", "insert"])
        edges = sorted(graph.edge_set())
        if op == "delete" and len(edges) > 35:
            maintainer.delete_edge(*rng.choice(edges))
        elif op == "increase":
            edge = rng.choice(edges)
            maintainer.change_weight(*edge, graph.weight(*edge) * 3)
        elif op == "decrease":
            edge = rng.choice(edges)
            maintainer.change_weight(*edge, graph.weight(*edge) / 3)
        else:
            a = rng.randrange(30)
            b = rng.randrange(30)
            if a != b and not graph.has_edge(a, b):
                maintainer.insert_edge(a, b, rng.random() + 0.05)
    fresh = DISO(graph, transit=oracle.transit)
    for s, t in PAIRS:
        assert oracle.query(s, t) == pytest.approx(fresh.query(s, t))
        expected = shortest_distance(graph, s, t)
        assert oracle.query(s, t) == pytest.approx(expected)
