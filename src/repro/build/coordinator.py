"""The parallel build coordinator: fan out, spool, merge, finalize.

``build_parallel(graph, jobs=N)`` produces an oracle whose frozen
snapshot is **bitwise identical** to the sequential constructor's, for
every family (DISO, ADISO, DISO-S, ADISO-P).  The pipeline:

1. *Selection* (coordinator): input sparsification for DISO-S, the ISC
   path cover, SLS landmark selection — the cheap, sequential decisions
   that define the work units.
2. *Fan-out* (workers): one unit per transit node (bounded SPT +
   overlay out-edges) and one per ADISO landmark (Dijkstra pair).
   Workers read the graph from a shared read-only build container
   (:mod:`repro.build.graph_store`) — never pickle — and return
   CRC-framed shards (:mod:`repro.build.shards`).  Every validated
   shard is spooled to disk before it is counted, so a killed build
   resumes from its last complete shard.
3. *Merge* (coordinator): shards are assembled in **sorted landmark
   order**, regardless of arrival order.  Determinism holds because
   every downstream serialization point is insertion-order independent
   (DESIGN.md §9) and shard contents carry no wall-clock state.
4. *Finalize* (coordinator): the per-family tail that needs the merged
   overlay — DISO-S's overlay sparsification, ADISO-P's second overlay
   ``H``.

The dispatcher reuses the serving plane's shape (ready handshake,
round-robin chunks, replace-on-crash with a restart budget) but not
its deadline pings: build chunks have no latency SLA — a unit may
legitimately run for minutes — so liveness is process aliveness, not
responsiveness.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
from dataclasses import dataclass
from multiprocessing.connection import wait as connection_wait
from pathlib import Path

from repro.build.checkpoint import BuildSpool
from repro.build.graph_store import build_container_bytes, load_build_graph
from repro.build.profiler import BuildReport, BuildWorkerStats
from repro.build.shards import (
    LANDMARK_KIND,
    TREE_KIND,
    decode_shard,
    kind_name,
)
from repro.build.worker import build_worker_main, compute_unit
from repro.exceptions import FormatError, PreprocessingError
from repro.graph.digraph import DiGraph
from repro.landmarks.base import LandmarkTable
from repro.oracle.adiso import ADISO
from repro.oracle.adiso_p import ADISOPartial
from repro.oracle.diso import DISO
from repro.oracle.diso_s import DISOSparse
from repro.overlay.distance_graph import (
    assemble_distance_graph,
    validate_transit,
)
from repro.overlay.sparsify import sparsify_graph

FAMILIES = ("diso", "adiso", "diso-s", "adiso-p")

_READY_TIMEOUT = 60.0
_POLL_SECONDS = 0.25


@dataclass
class BuildResult:
    """What ``build_parallel`` returns: the oracle plus its profile."""

    oracle: DISO
    report: BuildReport


def canonical_snapshot_bytes(frozen_oracle) -> bytes:
    """Snapshot bytes with wall-clock meta zeroed — the parity artifact.

    Snapshot headers record ``preprocess_seconds``/``freeze_seconds``,
    which legitimately differ between two builds of the same index.
    Zeroing them (and only them) before serializing yields bytes that
    are a pure function of the index content, which is what the build
    plane's bitwise-parity property tests compare.
    """
    from repro.oracle.snapshot import save_snapshot

    saved = (frozen_oracle.preprocess_seconds, frozen_oracle.freeze_seconds)
    frozen_oracle.preprocess_seconds = 0.0
    frozen_oracle.freeze_seconds = 0.0
    try:
        with tempfile.TemporaryDirectory(prefix="dso-canon-") as tmp:
            path = Path(tmp) / "canonical.dsosnap"
            save_snapshot(frozen_oracle, path)
            return path.read_bytes()
    finally:
        frozen_oracle.preprocess_seconds = saved[0]
        frozen_oracle.freeze_seconds = saved[1]


def _resolve_start_method(start_method: str | None) -> str:
    """Explicit argument > ``DSO_BUILD_START_METHOD`` > fork-else-spawn."""
    if start_method is None:
        start_method = os.environ.get("DSO_BUILD_START_METHOD") or None
    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else "spawn"
    return start_method


def _normalize_family(family: str) -> str:
    key = family.lower().replace("_", "-")
    if key not in FAMILIES:
        raise PreprocessingError(
            f"unknown oracle family {family!r}; "
            f"parallel builds support {', '.join(FAMILIES)}"
        )
    return key


class _WorkerHandle:
    __slots__ = ("process", "conn", "outstanding", "stats")

    def __init__(self, process, conn, stats: BuildWorkerStats) -> None:
        self.process = process
        self.conn = conn
        # chunk_id -> unit list, re-sent verbatim if the process dies.
        self.outstanding: dict[int, list] = {}
        self.stats = stats


class _BuildPool:
    """A fixed-slot worker pool over one build container."""

    def __init__(
        self,
        container_path: Path,
        workers: int,
        start_method: str,
        max_restarts: int | None,
        report: BuildReport,
    ) -> None:
        self._container_path = container_path
        self._ctx = multiprocessing.get_context(start_method)
        self._max_restarts = (
            max_restarts if max_restarts is not None else 3 * workers
        )
        self._total_restarts = 0
        self._report = report
        self._workers: list[_WorkerHandle] = []
        try:
            for index in range(workers):
                stats = BuildWorkerStats(index=index)
                report.workers.append(stats)
                self._workers.append(self._spawn(stats))
        except BaseException:
            self.shutdown()
            raise

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, stats: BuildWorkerStats) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=build_worker_main,
            args=(str(self._container_path), child_conn, stats.index),
            daemon=True,
            name=f"dso-build-worker-{stats.index}",
        )
        process.start()
        child_conn.close()
        deadline = time.monotonic() + _READY_TIMEOUT
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not parent_conn.poll(min(remaining, 1.0)):
                if time.monotonic() >= deadline:
                    process.terminate()
                    raise PreprocessingError(
                        f"build worker {stats.index} did not become "
                        f"ready within {_READY_TIMEOUT:.0f}s"
                    )
                continue
            try:
                message = parent_conn.recv()
            except (EOFError, OSError) as exc:
                raise PreprocessingError(
                    f"build worker {stats.index} died while loading the "
                    f"container"
                ) from exc
            if message[0] == "ready":
                stats.pid = message[2]["pid"]
                stats.load_seconds += message[2]["load_seconds"]
                return _WorkerHandle(process, parent_conn, stats)
            if message[0] == "error":
                raise PreprocessingError(
                    f"build worker {stats.index} failed to start: "
                    f"{message[2]}"
                )
            # Anything else pre-ready is a protocol bug; keep waiting.

    def _replace(self, handle: _WorkerHandle) -> _WorkerHandle:
        self._total_restarts += 1
        handle.stats.restarts += 1
        if self._total_restarts > self._max_restarts:
            raise PreprocessingError(
                f"build pool exceeded its restart budget "
                f"({self._max_restarts}); giving up"
            )
        try:
            handle.conn.close()
        except OSError:  # dsolint: disable=DSO403 -- closing a dead worker's pipe; its replacement is spawned below
            pass
        if handle.process.is_alive():
            handle.process.terminate()
        handle.process.join(timeout=5.0)
        outstanding = handle.outstanding
        fresh = self._spawn(handle.stats)
        self._workers[handle.stats.index] = fresh
        for chunk_id, units in outstanding.items():
            fresh.conn.send(("chunk", chunk_id, units))
            fresh.outstanding[chunk_id] = units
        return fresh

    def shutdown(self) -> None:
        for handle in self._workers:
            try:
                handle.conn.send(("stop",))
            except (BrokenPipeError, OSError):  # dsolint: disable=DSO403 -- shutdown is best-effort; a dead worker is already the goal state
                pass
        for handle in self._workers:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            try:
                handle.conn.close()
            except OSError:  # dsolint: disable=DSO403 -- shutdown close on an already-broken pipe
                pass

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def run(self, units: list, chunk_size: int, handle_shard) -> None:
        """Fan ``units`` out in chunks; deliver each shard as it lands.

        ``handle_shard(kind, label, shard_bytes)`` runs on the
        coordinator for every unit, in arrival order (merge order is
        the assembler's job, not the dispatcher's).
        """
        chunks = [
            (chunk_id, units[start : start + chunk_size])
            for chunk_id, start in enumerate(
                range(0, len(units), chunk_size)
            )
        ]
        for position, (chunk_id, chunk_units) in enumerate(chunks):
            worker = self._workers[position % len(self._workers)]
            worker.conn.send(("chunk", chunk_id, chunk_units))
            worker.outstanding[chunk_id] = chunk_units
        remaining = {chunk_id for chunk_id, _ in chunks}

        while remaining:
            by_conn = {
                handle.conn: handle
                for handle in self._workers
                if handle.outstanding
            }
            ready = connection_wait(
                list(by_conn), timeout=_POLL_SECONDS
            )
            for conn in ready:
                handle = by_conn[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    self._replace(handle)
                    continue
                if message[0] == "result":
                    _, chunk_id, _, shards, busy = message
                    if chunk_id not in handle.outstanding:
                        continue  # duplicate after a re-send race
                    del handle.outstanding[chunk_id]
                    remaining.discard(chunk_id)
                    handle.stats.chunks += 1
                    handle.stats.units += len(shards)
                    handle.stats.busy_seconds += busy
                    for kind, label, data in shards:
                        handle_shard(kind, label, data)
                elif message[0] == "error":
                    raise PreprocessingError(
                        f"build worker {handle.stats.index} failed: "
                        f"{message[2]}"
                    )
            # Health sweep: a silently dead worker never EOFs a wait.
            for handle in list(self._workers):
                if handle.outstanding and not handle.process.is_alive():
                    self._replace(handle)


# ----------------------------------------------------------------------
# Assembly
# ----------------------------------------------------------------------
def _assemble_oracle(
    *,
    family: str,
    graph: DiGraph,
    input_sparsification,
    transit_frozen: frozenset[int],
    landmark_list: list[int],
    node_ids: list[int],
    results: dict,
    params: dict,
    report: BuildReport,
):
    """Merge decoded shards into a finished oracle, in landmark order."""
    with report.timed("assembly"):
        trees = {}
        edges = {}
        for u in sorted(transit_frozen):
            shard = results[(TREE_KIND, u)]
            trees[u] = shard.to_tree()
            edges[u] = shard.out_edges
        distance_graph = assemble_distance_graph(transit_frozen, edges)
        landmark_table = None
        if landmark_list:
            out_rows = []
            in_rows = []
            for landmark in landmark_list:
                shard = results[(LANDMARK_KIND, landmark)]
                outbound, inbound = shard.to_rows(node_ids)
                out_rows.append(outbound)
                in_rows.append(inbound)
            landmark_table = LandmarkTable.from_rows(
                landmark_list, out_rows, in_rows
            )
    with report.timed("sparsify_overlay"):
        if family == "diso":
            oracle = DISO._from_assembled(graph, distance_graph, trees)
        elif family == "adiso":
            oracle = ADISO._from_assembled(
                graph, distance_graph, trees, landmark_table=landmark_table
            )
        elif family == "diso-s":
            oracle = DISOSparse._from_assembled(
                graph,
                input_sparsification,
                distance_graph,
                trees,
                beta=params["beta"],
                degree_floor=params["degree_floor"],
            )
        else:  # adiso-p
            oracle = ADISOPartial._from_assembled(
                graph,
                distance_graph,
                trees,
                landmark_table=landmark_table,
                tau_h=params["tau_h"],
            )
    return oracle


def _complete_units(
    *,
    spool: BuildSpool,
    units: list,
    jobs: int,
    start_method: str | None,
    chunk_size: int | None,
    max_restarts: int | None,
    on_shard,
    report: BuildReport,
) -> dict:
    """Resume spooled shards, build the missing ones, return all decoded."""
    spooled, corrupt = spool.load_shards()
    report.corrupt_shards = corrupt
    results = {unit: spooled[unit] for unit in units if unit in spooled}
    report.resumed_units = len(results)
    missing = [unit for unit in units if unit not in results]

    def handle_shard(kind: int, label: int, data: bytes) -> None:
        shard = decode_shard(data)  # validates CRC before anything else
        spool.write_shard(kind, label, data)
        results[(kind, label)] = shard
        report.shard_bytes.append(len(data))
        report.built_units += 1
        if on_shard is not None:
            on_shard(kind_name(kind), label)

    with report.timed("spt_fanout"):
        if not missing:
            return results
        if jobs <= 0:
            # Inline path: same container, same compute_unit, same
            # shard codec as the pool — byte parity by construction.
            loaded = load_build_graph(spool.container_path)
            transit = frozenset(loaded.transit)
            for kind, label in missing:
                data = compute_unit(
                    kind,
                    label,
                    loaded.graph,
                    loaded.build_graph,
                    transit,
                    loaded.node_ids,
                )
                handle_shard(kind, label, data)
            return results
        workers = min(jobs, len(missing))
        size = chunk_size or max(
            1, -(-len(missing) // (workers * 4))
        )
        pool = _BuildPool(
            spool.container_path,
            workers,
            _resolve_start_method(start_method),
            max_restarts,
            report,
        )
        try:
            pool.run(missing, size, handle_shard)
        finally:
            pool.shutdown()
    return results


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def build_parallel(
    graph: DiGraph,
    family: str = "diso",
    jobs: int = 1,
    *,
    tau: int = 4,
    theta: float = 1.0,
    transit=None,
    num_landmarks: int = 10,
    alpha: float = 0.1,
    landmarks: list[int] | None = None,
    seed: int = 0,
    beta: float = 1.5,
    degree_floor: int | None = None,
    tau_h: int = 4,
    spool_dir: str | Path | None = None,
    start_method: str | None = None,
    chunk_size: int | None = None,
    max_restarts: int | None = None,
    on_shard=None,
) -> BuildResult:
    """Build an oracle with a process pool; bitwise-equal to sequential.

    Parameters mirror the family constructors (``tau``/``theta``/
    ``transit`` for the cover, ``num_landmarks``/``alpha``/
    ``landmarks``/``seed`` for ADISO-family landmarks, ``beta``/
    ``degree_floor`` for DISO-S, ``tau_h`` for ADISO-P), plus:

    jobs:
        Worker process count.  ``0`` computes every unit inline on the
        coordinator (no processes — still spooled and profiled), which
        is also the cheapest way to finish a near-complete checkpoint.
    spool_dir:
        Checkpoint directory.  When given, completed shards persist
        there and a re-run resumes from them (after a fingerprint
        check); when omitted, a temporary spool is used and deleted.
    start_method:
        ``fork``/``spawn``/``forkserver``; default is the
        ``DSO_BUILD_START_METHOD`` environment variable, then fork
        where available.
    on_shard:
        Optional ``callback(kind_name, label)`` invoked after each
        newly built shard is validated and spooled — the hook the
        kill-and-resume tests use.

    Raises
    ------
    PreprocessingError
        On an empty/invalid transit set, a worker failure, or an
        exhausted restart budget.
    FormatError
        When ``spool_dir`` holds a checkpoint for a different build.
    """
    family = _normalize_family(family)
    report = BuildReport(
        family=family,
        jobs=jobs,
        start_method=_resolve_start_method(start_method) if jobs > 0
        else None,
    )
    wall_start = time.perf_counter()

    with report.timed("landmark_selection"):
        if family == "diso-s":
            input_sparsification = sparsify_graph(graph, beta, degree_floor)
            build_graph = input_sparsification.graph
        else:
            input_sparsification = None
            build_graph = graph
        if transit is None:
            transit = DISO.select_transit(build_graph, tau=tau, theta=theta)
        transit_frozen = validate_transit(build_graph, transit)
        if family in ("adiso", "adiso-p"):
            landmark_list = ADISO.select_landmarks(
                graph, num_landmarks, seed=seed, alpha=alpha,
                landmarks=landmarks,
            )
        else:
            landmark_list = []

    params = {
        "tau": tau,
        "theta": theta,
        "num_landmarks": num_landmarks,
        "alpha": alpha,
        "seed": seed,
        "beta": beta,
        "degree_floor": degree_floor,
        "tau_h": tau_h,
    }
    container = build_container_bytes(
        graph,
        family=family,
        params=params,
        transit=sorted(transit_frozen),
        landmarks=landmark_list,
        build_graph=build_graph,
    )

    if spool_dir is not None:
        oracle = _build_with_spool(
            BuildSpool(spool_dir), container, graph, input_sparsification,
            family, params, transit_frozen, landmark_list, jobs,
            start_method, chunk_size, max_restarts, on_shard, report,
        )
    else:
        with tempfile.TemporaryDirectory(prefix="dso-build-") as tmp:
            oracle = _build_with_spool(
                BuildSpool(tmp), container, graph, input_sparsification,
                family, params, transit_frozen, landmark_list, jobs,
                start_method, chunk_size, max_restarts, on_shard, report,
            )
    report.wall_seconds = time.perf_counter() - wall_start
    report.oracle = oracle.name
    oracle.preprocess_seconds = report.wall_seconds
    return BuildResult(oracle=oracle, report=report)


def _build_with_spool(
    spool, container, graph, input_sparsification, family, params,
    transit_frozen, landmark_list, jobs, start_method, chunk_size,
    max_restarts, on_shard, report,
):
    spool.prepare(container)
    units = [(TREE_KIND, u) for u in sorted(transit_frozen)]
    units += [(LANDMARK_KIND, x) for x in landmark_list]
    report.total_units = len(units)
    results = _complete_units(
        spool=spool,
        units=units,
        jobs=jobs,
        start_method=start_method,
        chunk_size=chunk_size,
        max_restarts=max_restarts,
        on_shard=on_shard,
        report=report,
    )
    node_ids = sorted(graph.nodes())
    return _assemble_oracle(
        family=family,
        graph=graph,
        input_sparsification=input_sparsification,
        transit_frozen=transit_frozen,
        landmark_list=landmark_list,
        node_ids=node_ids,
        results=results,
        params=params,
        report=report,
    )


def finalize_checkpoint(
    spool_dir: str | Path,
    jobs: int = 0,
    *,
    start_method: str | None = None,
    chunk_size: int | None = None,
    max_restarts: int | None = None,
    on_shard=None,
) -> BuildResult:
    """Complete an interrupted spool into a finished oracle.

    Reads the spooled build container (graph, family, parameters,
    selections — no re-selection, no original graph object needed),
    builds whatever shards are still missing (inline by default;
    ``jobs > 0`` fans out), and assembles.  The result freezes to the
    same bytes a from-scratch build produces, because the container's
    roundtripped graph is CSR-canonical.

    Raises
    ------
    FormatError
        When ``spool_dir`` has no container or it fails validation.
    """
    spool = BuildSpool(spool_dir)
    if not spool.container_path.exists():
        raise FormatError(
            f"{spool.root}: no build checkpoint here (missing "
            f"{spool.container_path.name})"
        )
    loaded = load_build_graph(spool.container_path)
    family = _normalize_family(loaded.family)
    params = loaded.params
    report = BuildReport(
        family=family,
        jobs=jobs,
        start_method=_resolve_start_method(start_method) if jobs > 0
        else None,
    )
    wall_start = time.perf_counter()
    with report.timed("landmark_selection"):
        # Selection is already pinned by the container; only DISO-S
        # needs its step-1 bookkeeping re-derived (deterministically).
        if family == "diso-s":
            input_sparsification = sparsify_graph(
                loaded.graph, params["beta"], params["degree_floor"]
            )
            graph = loaded.graph
        else:
            input_sparsification = None
            graph = loaded.graph
    transit_frozen = frozenset(loaded.transit)
    units = [(TREE_KIND, u) for u in sorted(transit_frozen)]
    units += [(LANDMARK_KIND, x) for x in loaded.landmarks]
    report.total_units = len(units)
    results = _complete_units(
        spool=spool,
        units=units,
        jobs=jobs,
        start_method=start_method,
        chunk_size=chunk_size,
        max_restarts=max_restarts,
        on_shard=on_shard,
        report=report,
    )
    oracle = _assemble_oracle(
        family=family,
        graph=graph,
        input_sparsification=input_sparsification,
        transit_frozen=transit_frozen,
        landmark_list=loaded.landmarks,
        node_ids=loaded.node_ids,
        results=results,
        params=params,
        report=report,
    )
    report.wall_seconds = time.perf_counter() - wall_start
    report.oracle = oracle.name
    oracle.preprocess_seconds = report.wall_seconds
    return BuildResult(oracle=oracle, report=report)
