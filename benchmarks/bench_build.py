"""Bench: parallel build plane vs the sequential oracle constructor.

Builds a DISO over the paper's standard road-network scale two ways —
the classic sequential constructor and ``repro.build.build_parallel``
at 1, 2, and 4 worker processes — and records wall time plus the
per-phase profile (landmark selection, SPT fan-out, assembly) for each.

Every parallel build first asserts bitwise snapshot parity with the
sequential baseline: the build plane's whole claim is that process
fan-out changes only *when* the work happens, never the result.
Results merge into the repo-root ``BENCH_build.json``; the centrally
stamped ``cpu_count`` matters here more than in any other bench —
on a single-core container the multi-job rows document dispatch
overhead, not scaling.

Standalone usage::

    PYTHONPATH=src:benchmarks python benchmarks/bench_build.py
    PYTHONPATH=src:benchmarks python benchmarks/bench_build.py --smoke

``--smoke`` builds a tiny graph at jobs=2 only — a CI-sized
end-to-end check of container packing, worker bootstrap, shard merge,
and byte parity (no files written, no speedup asserted).
"""

from __future__ import annotations

import argparse
import time

from repro.build import build_parallel, canonical_snapshot_bytes
from repro.graph.generators import road_network
from repro.oracle.diso import DISO

from bench_util import BUILD_JSON, merge_json, write_result

SEED = 7
JOB_COUNTS = (1, 2, 4)

GRAPH_NAME = "road2k"


def build_graph(smoke: bool):
    if smoke:
        return road_network(8, 8, seed=SEED)
    return road_network(48, 48, seed=SEED)


def run(smoke: bool = False) -> dict:
    """Build sequentially and at each pool size; return timing rows."""
    graph = build_graph(smoke)
    job_counts = (2,) if smoke else JOB_COUNTS

    started = time.perf_counter()
    baseline = DISO(graph, tau=4, theta=1.0)
    sequential_s = time.perf_counter() - started
    expected_bytes = canonical_snapshot_bytes(baseline.freeze())

    result: dict = {
        "graph": GRAPH_NAME if not smoke else "road-smoke",
        "oracle": baseline.name,
        "nodes": graph.number_of_nodes(),
        "transit": len(baseline.transit),
        "sequential": {"build_s": round(sequential_s, 6)},
        "jobs": {},
    }
    print(f"{'sequential':>12}: build {sequential_s:>8.3f}s")

    for jobs in job_counts:
        built = build_parallel(graph, family="diso", jobs=jobs, seed=SEED)
        assert canonical_snapshot_bytes(built.oracle.freeze()) == (
            expected_bytes
        ), f"jobs={jobs} snapshot diverges from the sequential build"
        report = built.report
        row = {
            "build_s": round(report.wall_seconds, 6),
            "speedup_vs_sequential": round(
                sequential_s / report.wall_seconds, 3
            )
            if report.wall_seconds > 0
            else float("inf"),
            "phases_s": {
                phase: round(seconds, 6)
                for phase, seconds in report.phase_seconds.items()
            },
            "units": report.total_units,
            "shard_bytes": report.shard_stats()["total_bytes"],
            "worker_utilization": {
                str(index): round(fraction, 4)
                for index, fraction in report.utilization().items()
            },
        }
        result["jobs"][str(jobs)] = row
        fanout = report.phase_seconds.get("spt_fanout", 0.0)
        print(
            f"{jobs:>9} job: build {report.wall_seconds:>8.3f}s  "
            f"fanout {fanout:>7.3f}s  "
            f"speedup {row['speedup_vs_sequential']:.2f}x  "
            f"units {report.total_units}  parity ok"
        )
    return result


def format_result(result: dict) -> str:
    lines = [
        "Parallel build plane vs the sequential constructor",
        f"graph={result['graph']}  oracle={result['oracle']}  "
        f"nodes={result['nodes']}  transit={result['transit']}",
        f"{'backend':>12} {'build s':>9} {'fanout s':>9} {'speedup':>8}",
        f"{'sequential':>12} {result['sequential']['build_s']:>9.3f} "
        f"{'-':>9} {'1.00':>8}",
    ]
    for jobs, row in result["jobs"].items():
        lines.append(
            f"{jobs + ' job':>12} {row['build_s']:>9.3f} "
            f"{row['phases_s'].get('spt_fanout', 0.0):>9.3f} "
            f"{row['speedup_vs_sequential']:>8.2f}"
        )
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny graph, jobs=2 only, no files written",
    )
    args = parser.parse_args()
    result = run(smoke=args.smoke)
    if args.smoke:
        print("smoke run OK (byte parity held)")
        return
    write_result("build", format_result(result))
    key = f"{result['oracle']}@{result['graph']}-build"
    path = merge_json({key: result}, BUILD_JSON)
    print(f"wrote {path}")
    print(format_result(result))


# ----------------------------------------------------------------------
# pytest entry point (small scale; the standalone main is the real run)
# ----------------------------------------------------------------------
def test_build_bench_smoke():
    result = run(smoke=True)
    assert result["jobs"]["2"]["units"] > 0
    assert result["jobs"]["2"]["build_s"] > 0.0


if __name__ == "__main__":
    main()
