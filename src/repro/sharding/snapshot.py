"""Sharded snapshots: a manifest plus one DSOSNAP1 file per shard.

A sharded snapshot is a *directory*::

    <dir>/manifest.dsoshrd     DSOSHRD1 container: assignment, borders,
                               border matrices, cross edges, provenance
    <dir>/shard-0000.dsosnap   per-shard frozen-oracle snapshots, each a
    <dir>/shard-0001.dsosnap   plain DSOSNAP1 file (loadable standalone
    ...                        with :func:`repro.oracle.snapshot.load_snapshot`)

The manifest reuses the parameterized DSOSNAP1 framing
(:func:`repro.oracle.snapshot.pack_container` /
:class:`~repro.oracle.snapshot.SnapshotReader` with the ``DSOSHRD1``
magic) — same section table, CRC, and alignment rules, distinct magic
so a shard manifest can never be mistaken for a serving snapshot.

The split matters for serving: a dispatcher only needs the manifest
(the :class:`~repro.sharding.oracle.BorderOverlay` state — small), while
each shard worker maps exactly one ``shard-*.dsosnap`` file.  Nothing
loads the whole graph anywhere.

Every sequence serialized here arrives pre-sorted from the
:class:`~repro.sharding.plan.ShardPlan` (nodes ascending, borders
ascending, cross edges lexicographic), so equal builds produce
bitwise-equal manifests.
"""

from __future__ import annotations

from pathlib import Path

from repro.exceptions import FormatError
from repro.oracle.snapshot import (
    SectionWriter,
    SnapshotReader,
    load_snapshot,
    pack_container,
    save_snapshot,
)
from repro.sharding.frozen_overlay import (
    HAVE_NUMPY,
    FrozenOverlay,
    compile_overlay_csr,
    compute_border_closure,
)
from repro.sharding.oracle import BorderOverlay, ShardedOracle

SHARD_MAGIC = b"DSOSHRD1"
SHARD_VERSION = 1
MANIFEST_NAME = "manifest.dsoshrd"

INFINITY = float("inf")


def _shard_file(shard: int) -> str:
    return f"shard-{shard:04d}.dsosnap"


def save_sharded_snapshot(build, target: str | Path) -> Path:
    """Write a :class:`~repro.sharding.build.ShardedBuild` as a directory.

    Creates ``target`` (and parents) if needed, writes the manifest and
    one per-shard snapshot file, and returns the directory path.
    """
    target = Path(target)
    target.mkdir(parents=True, exist_ok=True)
    plan = build.plan

    writer = SectionWriter()
    # node -> shard, as two parallel columns sorted by node id.
    nodes = sorted(plan.assignment)
    writer.add("assignment.nodes", "q", nodes)
    writer.add("assignment.parts", "q", [plan.assignment[n] for n in nodes])
    writer.add("borders.all", "q", plan.borders)
    for shard in range(plan.parts):
        writer.add(f"shard{shard}.borders", "q", plan.shard_borders[shard])
        writer.add(
            f"shard{shard}.matrix",
            "d",
            [w for row in build.border_matrices[shard] for w in row],
        )
    writer.add("cross.tails", "q", [e[0] for e in plan.cross_edges])
    writer.add("cross.heads", "q", [e[1] for e in plan.cross_edges])
    writer.add("cross.weights", "d", [e[2] for e in plan.cross_edges])

    # Frozen stitch plane sections: the overlay pre-compiled to CSR
    # (dense border ids reuse ``borders.all``) plus the failure-free
    # border closure.  Pure-Python compile, so the manifest bytes are
    # identical with or without numpy installed at save time.
    overlay = BorderOverlay(
        plan.assignment,
        plan.shard_borders,
        [(tail, head, weight) for tail, head, weight in plan.cross_edges],
        build.border_matrices,
    )
    csr = compile_overlay_csr(overlay)
    writer.add("frozen.shard", "q", csr["border_shard"])
    writer.add("frozen.local", "q", csr["border_local"])
    writer.add("frozen.offsets", "q", csr["offsets"])
    writer.add("frozen.heads", "q", csr["heads"])
    writer.add("frozen.weights", "d", csr["weights"])
    closure = getattr(build, "border_closure", None)
    if closure is None:
        closure = compute_border_closure(overlay)
    writer.add("closure.matrix", "d", [w for row in closure for w in row])

    shard_files = [_shard_file(shard) for shard in range(plan.parts)]
    meta = {
        "parts": plan.parts,
        "method": plan.method,
        "seed": plan.seed,
        "num_nodes": len(plan.assignment),
        "num_borders": plan.num_borders,
        "edge_cut": plan.edge_cut,
        "shard_files": shard_files,
        "shard_sizes": [len(nodes) for nodes in plan.shard_nodes],
        "build_seconds": build.build_seconds,
    }
    blob = pack_container(
        writer,
        magic=SHARD_MAGIC,
        version=SHARD_VERSION,
        engine="ShardedSnapshot",
        meta=meta,
    )
    (target / MANIFEST_NAME).write_bytes(blob)
    for shard, name in enumerate(shard_files):
        save_snapshot(build.shard_oracles[shard], target / name)
    return target


def _open_manifest(source: str | Path, verify: bool = True) -> SnapshotReader:
    source = Path(source)
    manifest = source / MANIFEST_NAME if source.is_dir() else source
    if not manifest.exists():
        raise FormatError(f"{source}: no {MANIFEST_NAME} manifest found")
    return SnapshotReader(
        manifest, verify=verify, magic=SHARD_MAGIC, version=SHARD_VERSION
    )


def load_shard_plan_overlay(
    source: str | Path, verify: bool = True
) -> tuple[BorderOverlay, dict, list[Path]]:
    """Load only the manifest: overlay state, meta, shard file paths.

    This is the dispatcher-side load — no shard snapshot is touched, so
    the caller's memory footprint is the overlay (assignment + borders +
    matrices + cross edges), not the index.
    """
    source = Path(source)
    base = source if source.is_dir() else source.parent
    reader = _open_manifest(source, verify=verify)
    try:
        meta = dict(reader.meta)
        parts = int(meta["parts"])
        nodes = reader.section("assignment.nodes")
        owners = reader.section("assignment.parts")
        assignment = {
            int(node): int(owner) for node, owner in zip(nodes, owners)
        }
        shard_borders = []
        border_matrices = []
        for shard in range(parts):
            borders = tuple(
                int(b) for b in reader.section(f"shard{shard}.borders")
            )
            flat = reader.section(f"shard{shard}.matrix")
            width = len(borders)
            if len(flat) != width * width:
                raise FormatError(
                    f"{source}: shard {shard} matrix has {len(flat)} "
                    f"entries, expected {width * width}"
                )
            shard_borders.append(borders)
            border_matrices.append(
                [
                    list(flat[i * width : (i + 1) * width])
                    for i in range(width)
                ]
            )
        cross_edges = list(
            zip(
                (int(t) for t in reader.section("cross.tails")),
                (int(h) for h in reader.section("cross.heads")),
                reader.section("cross.weights"),
            )
        )
    finally:
        reader.close()
    overlay = BorderOverlay(
        assignment, tuple(shard_borders), cross_edges, border_matrices
    )
    shard_paths = [base / name for name in meta["shard_files"]]
    return overlay, meta, shard_paths


def load_frozen_overlay(
    source: str | Path, verify: bool = True
) -> FrozenOverlay | None:
    """Load the frozen stitch plane from a manifest, zero-copy.

    When the manifest carries ``frozen.*`` sections the CSR lanes (and
    the closure matrix, if present) are NumPy views straight into the
    manifest mmap — no copies; the returned overlay keeps the reader
    open and releases it via :meth:`FrozenOverlay.close`.  Manifests
    predating the sections fall back to an in-memory compile (closure
    included).  Returns ``None`` when NumPy is unavailable — callers
    then stay on the scalar stitch plane.
    """
    if not HAVE_NUMPY:
        return None
    import numpy as np

    reader = _open_manifest(source, verify=verify)
    if not reader.has_section("frozen.offsets"):
        reader.close()
        overlay, _, _ = load_shard_plan_overlay(source, verify=verify)
        return FrozenOverlay.from_overlay(overlay, compute_closure=True)
    try:
        border_ids = np.asarray(reader.section("borders.all"))
        closure = None
        if reader.has_section("closure.matrix"):
            flat = np.asarray(reader.section("closure.matrix"))
            num = int(border_ids.size)
            if flat.size != num * num:
                raise FormatError(
                    f"{source}: closure matrix has {flat.size} entries, "
                    f"expected {num * num}"
                )
            closure = flat.reshape(num, num)
        frozen = FrozenOverlay(
            border_ids,
            np.asarray(reader.section("frozen.shard")),
            np.asarray(reader.section("frozen.local")),
            np.asarray(reader.section("frozen.offsets")),
            np.asarray(reader.section("frozen.heads")),
            np.asarray(reader.section("frozen.weights")),
            closure=closure,
        )
    except Exception:
        reader.close()
        raise
    frozen.reader = reader
    return frozen


def load_sharded_snapshot(
    source: str | Path, verify: bool = True
) -> ShardedOracle:
    """Restore the full sharded oracle: manifest plus every shard file."""
    overlay, _, shard_paths = load_shard_plan_overlay(source, verify=verify)
    shard_oracles = [load_snapshot(path, verify=verify) for path in shard_paths]
    return ShardedOracle(overlay, shard_oracles)


def sharded_snapshot_info(source: str | Path) -> dict:
    """Manifest header plus per-shard file sizes, without loading oracles."""
    source = Path(source)
    base = source if source.is_dir() else source.parent
    reader = _open_manifest(source)
    try:
        header = dict(reader.header)
        meta = reader.meta
    finally:
        reader.close()
    shard_bytes = {}
    for name in meta.get("shard_files", []):
        path = base / name
        shard_bytes[name] = path.stat().st_size if path.exists() else None
    header["shard_file_bytes"] = shard_bytes
    header["manifest_bytes"] = (
        (base / MANIFEST_NAME).stat().st_size
        if (base / MANIFEST_NAME).exists()
        else None
    )
    return header
