"""Smoke tests: every shipped example runs to completion.

Examples are documentation that executes; a broken example is a
documentation bug.  Each one is run in a subprocess with a generous
timeout and must exit 0.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_populated():
    assert len(EXAMPLES) >= 3, "the deliverable requires >= 3 examples"


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs(script: Path):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"
