"""The paper's oracles: DISO, ADISO, the boosting variants, maintenance."""

from repro.oracle.adiso import ADISO
from repro.oracle.adiso_p import ADISOPartial
from repro.oracle.audit import audit_index
from repro.oracle.batch import FailureStateView
from repro.oracle.caching import CachingDISO
from repro.oracle.base import (
    INFINITY,
    DistanceSensitivityOracle,
    QueryResult,
    QueryStats,
    normalize_failures,
)
from repro.oracle.diso import DISO
from repro.oracle.diso_bi import DISOBidirectional
from repro.oracle.frozen import FrozenADISO, FrozenDISO
from repro.oracle.hierarchy import HierarchicalDISO
from repro.oracle.diso_minus import DISOMinus
from repro.oracle.diso_s import DISOSparse
from repro.oracle.maintenance import OracleMaintainer
from repro.oracle.parallel import QueryEngine, ThroughputReport
from repro.oracle.paths import query_path, validate_path
from repro.oracle.serialize import load_index, save_index
from repro.oracle.sizing import index_size_bytes, index_size_megabytes
from repro.oracle.snapshot import (
    load_snapshot,
    save_snapshot,
    snapshot_info,
)

__all__ = [
    "DistanceSensitivityOracle",
    "QueryResult",
    "QueryStats",
    "INFINITY",
    "normalize_failures",
    "DISO",
    "DISOBidirectional",
    "FrozenDISO",
    "FrozenADISO",
    "HierarchicalDISO",
    "CachingDISO",
    "FailureStateView",
    "audit_index",
    "DISOMinus",
    "ADISO",
    "DISOSparse",
    "ADISOPartial",
    "OracleMaintainer",
    "QueryEngine",
    "ThroughputReport",
    "query_path",
    "validate_path",
    "save_index",
    "load_index",
    "save_snapshot",
    "load_snapshot",
    "snapshot_info",
    "index_size_bytes",
    "index_size_megabytes",
]
