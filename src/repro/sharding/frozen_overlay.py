"""The frozen stitch plane: CSR border overlay + batched stitch kernels.

PR 8 made cross-shard queries correct; every one of them pays a pure
Python multi-source Dijkstra (:func:`repro.sharding.oracle.
stitch_over_borders`) plus per-query repaired border rows.  This module
compiles the :class:`~repro.sharding.oracle.BorderOverlay` into the
same flat-array form the single-shard hot loop got in
:mod:`repro.oracle.batch_kernel`, so a dispatcher can stitch a whole
batch per array operation instead of per heap pop:

* :class:`FrozenOverlay` — the border overlay as one CSR adjacency over
  *dense border ids* (the remap table ``border_ids`` / ``border_shard``
  / ``border_local``).  Row ``u`` is the node's full-width type-2
  segment (its shard's border-matrix row, diagonal and ``inf`` entries
  included) followed by its type-1 cross edges.  Keeping the segments
  full-width makes failure repair a contiguous overwrite instead of a
  rebuild, and the extra entries are provably inert: a diagonal relaxes
  ``dist + 0.0 == dist`` (never an improvement) and an ``inf`` entry
  can never pass the ``candidate < best`` filter.
* :meth:`FrozenOverlay.stitch_batch` — a multi-source frontier kernel
  over a ``batch x num_borders`` key space, reusing the batch-kernel
  idioms (tiled CSR gathers, cumsum edge flattening, scatter-min with
  winner dedup, incumbent pruning lanes).  All queries in one call
  share a single *patch* — repaired type-2 blocks and failed cross
  edges — which is exactly how the sharded dispatcher groups them.
* :func:`compute_border_closure` — the failure-free all-pairs
  border-to-border distances over the overlay, precomputed at build
  time so an ``F = empty`` cross-shard query collapses to two leg
  lookups plus one matrix min (:meth:`FrozenOverlay.closure_answer`).
  This mirrors the transit-matrix precompute of the paper's TNR layer.

Bitwise parity with the scalar stitcher
---------------------------------------
The kernel's candidates are the same single float additions the scalar
stitcher performs — ``dist + weight`` per relaxation, ``dist + tail``
per arming, seeds taken verbatim — so both converge to the same labels
bitwise: a min over identical candidate floats does not depend on
relaxation order, and every candidate the kernel prunes (or the scalar
search skips) is ``>= best_final`` by the monotonicity of float
addition with non-negative weights.  The closure fast path is the one
deliberate re-association: it evaluates ``(lead + closure) + tail``
where the scalar walk evaluates ``((lead + w1) + w2 ...) + tail``.  On
graphs whose weights make float addition exact (integer, unit, or
dyadic weights — every graph the sharded parity suite runs, and the
same caveat DESIGN.md §13 already states for sharded-vs-unsharded
parity) the two associations are equal, which the parity tests assert
bitwise.

NumPy is optional for this repo: with :data:`HAVE_NUMPY` false the
serving plane keeps the PR 8 scalar stitcher and this module only
offers :func:`compute_border_closure` (pure Python).
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable

try:  # NumPy is optional at runtime; the scalar stitcher needs none of this.
    import numpy as np
except ImportError:  # pragma: no cover - exercised via HAVE_NUMPY gating
    np = None

from repro.sharding.oracle import INFINITY, BorderOverlay

HAVE_NUMPY = np is not None


def compute_border_closure(overlay: BorderOverlay) -> list[list[float]]:
    """Failure-free all-pairs distances over the border overlay graph.

    Row ``i`` holds ``d_H(b_i, b_j)`` for the globally sorted border
    list (the dense id order of :class:`FrozenOverlay`), computed by
    one Dijkstra per border over the overlay's type-1 + type-2 edges —
    the same ``d + weight`` relaxations
    :func:`~repro.sharding.oracle.stitch_over_borders` performs, so the
    closure entries are bitwise the distances the scalar walk would
    accumulate from a zero seed.  Pure Python and deterministic (the
    overlay's adjacency order is fixed by the sorted plan); ``inf``
    marks unreachable pairs and the diagonal is ``0.0``.
    """
    borders = sorted(
        node for shard in overlay.shard_borders for node in shard
    )
    adjacency = overlay._adjacency_clean
    matrix: list[list[float]] = []
    for source in borders:
        dist: dict[int, float] = {source: 0.0}
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist.get(u, INFINITY):
                continue
            for v, weight in adjacency(u):
                nd = d + weight
                if nd < dist.get(v, INFINITY):
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        matrix.append([dist.get(other, INFINITY) for other in borders])
    return matrix


def compile_overlay_csr(overlay: BorderOverlay) -> dict[str, list]:
    """Compile one overlay to flat CSR lists (pure Python, no numpy).

    Deterministic: dense ids are the globally sorted border list, each
    row is the full-width type-2 segment in local-index order followed
    by the node's cross edges in the plan's sorted cross-edge order —
    equal overlays compile to equal lists and therefore equal manifest
    bytes.  Returned keys: ``border_ids``, ``border_shard``,
    ``border_local``, ``offsets``, ``heads``, ``weights``.
    """
    pairs = sorted(
        (node, shard)
        for shard, shard_borders in enumerate(overlay.shard_borders)
        for node in shard_borders
    )
    border_ids = [node for node, _ in pairs]
    border_shard = [shard for _, shard in pairs]
    border_local = [
        overlay.border_index[shard][node] for node, shard in pairs
    ]
    dense_of = {node: dense for dense, (node, _) in enumerate(pairs)}
    offsets = [0]
    heads: list[int] = []
    weights: list[float] = []
    for dense, (node, shard) in enumerate(pairs):
        local = border_local[dense]
        shard_borders = overlay.shard_borders[shard]
        matrix = overlay.border_matrices[shard]
        for j, other in enumerate(shard_borders):
            heads.append(dense_of[other])
            weights.append(matrix[local][j])
        for head, weight in overlay.cross_adjacency.get(node, ()):
            heads.append(dense_of[head])
            weights.append(weight)
        offsets.append(len(heads))
    return {
        "border_ids": border_ids,
        "border_shard": border_shard,
        "border_local": border_local,
        "offsets": offsets,
        "heads": heads,
        "weights": weights,
    }


class FrozenOverlay:
    """Flat-array (CSR) form of one border overlay, plus its closure.

    Built by :meth:`from_overlay` at save/load time or restored
    zero-copy from the ``frozen.*`` / ``closure.matrix`` sections of a
    ``DSOSHRD1`` manifest
    (:func:`repro.sharding.snapshot.load_frozen_overlay`).  All arrays
    are read-only views or private copies; one instance is safely
    shared by every batch a dispatcher stitches.
    """

    def __init__(
        self,
        border_ids,
        border_shard,
        border_local,
        offsets,
        heads,
        weights,
        closure=None,
    ) -> None:
        if not HAVE_NUMPY:
            raise RuntimeError("FrozenOverlay requires numpy")
        #: Dense border id -> node id (globally sorted border list).
        self.border_ids = np.asarray(border_ids, dtype=np.int64)
        #: Dense border id -> owning shard.
        self.border_shard = np.asarray(border_shard, dtype=np.int64)
        #: Dense border id -> row index into its shard's border matrix
        #: (the remap table between dense and per-shard local space).
        self.border_local = np.asarray(border_local, dtype=np.int64)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.heads = np.asarray(heads, dtype=np.int64)
        self.weights = np.asarray(weights, dtype=np.float64)
        self.num_borders = int(self.border_ids.size)
        #: node id -> dense border id.
        self.dense_of = {
            int(node): dense for dense, node in enumerate(self.border_ids)
        }
        self.degrees = self.offsets[1:] - self.offsets[:-1]
        #: Per shard, the dense ids of its borders in local order — the
        #: inverse remap used to overwrite a shard's type-2 blocks.
        parts = int(self.border_shard.max()) + 1 if self.num_borders else 0
        self.shard_dense: list[np.ndarray] = []
        for shard in range(parts):
            dense = np.flatnonzero(self.border_shard == shard)
            # Local order equals dense order within one shard (both are
            # sorted by node id), asserted cheap here once.
            self.shard_dense.append(dense[np.argsort(self.border_local[dense])])
        #: ``(tail, head) -> flat position`` of each type-1 cross edge,
        #: for O(1) failure masking.
        self.cross_slot: dict[tuple[int, int], int] = {}
        #: Row-wise lower bound on the outgoing weight, diagonal slot
        #: excluded.  Failures only ever *grow* overlay weights (repairs
        #: remove edges; cross failures delete edges), so the
        #: failure-free minimum stays a valid pruning bound under every
        #: patch.
        self.min_weight = np.full(self.num_borders, INFINITY)
        for dense in range(self.num_borders):
            start = int(self.offsets[dense])
            stop = int(self.offsets[dense + 1])
            local = int(self.border_local[dense])
            row = self.weights[start:stop].copy()
            width = int(self.shard_dense[int(self.border_shard[dense])].size)
            if width:
                row[local] = INFINITY  # the diagonal is not an edge
            if row.size:
                self.min_weight[dense] = row.min()
            for position in range(start + width, stop):
                head_node = int(self.border_ids[self.heads[position]])
                tail_node = int(self.border_ids[dense])
                self.cross_slot[(tail_node, head_node)] = position
        #: The manifest reader backing zero-copy loads; ``None`` for
        #: overlays compiled in memory.  :meth:`close` releases it.
        self.reader = None
        self.closure = (
            None if closure is None else np.asarray(closure, dtype=np.float64)
        )
        if (
            self.closure is not None
            and self.closure.shape != (self.num_borders, self.num_borders)
        ):
            raise ValueError(
                f"closure shape {self.closure.shape} does not match "
                f"{self.num_borders} borders"
            )

    def close(self) -> None:
        """Release the backing manifest reader, if any."""
        if self.reader is not None:
            self.reader.close()
            self.reader = None

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    @classmethod
    def from_overlay(
        cls,
        overlay: BorderOverlay,
        closure: list[list[float]] | None = None,
        compute_closure: bool = False,
    ) -> "FrozenOverlay":
        """Compile a :class:`BorderOverlay` into flat CSR arrays.

        The dense-id layout is :func:`compile_overlay_csr`'s.
        ``closure`` attaches a precomputed border closure (row-major
        over dense ids); ``compute_closure=True`` computes one here
        instead.
        """
        csr = compile_overlay_csr(overlay)
        if closure is None and compute_closure:
            closure = compute_border_closure(overlay)
        return cls(
            csr["border_ids"], csr["border_shard"], csr["border_local"],
            csr["offsets"], csr["heads"], csr["weights"],
            closure=closure,
        )

    # ------------------------------------------------------------------
    # Failure patches
    # ------------------------------------------------------------------
    def patched_weights(
        self,
        repaired: dict[int, list[list[float]]] | None = None,
        cross_failed: Iterable[tuple[int, int]] | None = None,
    ):
        """The weight lane under one failure patch.

        ``repaired`` maps a shard id to replacement border-matrix rows
        (full width, diagonal included); ``cross_failed`` masks type-1
        edges to ``inf``.  With no patch the shared base lane is
        returned untouched — callers must not mutate it.
        """
        if not repaired and not cross_failed:
            return self.weights
        weights = self.weights.copy()
        for shard, rows in (repaired or {}).items():
            for local, dense in enumerate(self.shard_dense[shard]):
                start = int(self.offsets[dense])
                row = rows[local]
                weights[start : start + len(row)] = row
        for edge in cross_failed or ():
            slot = self.cross_slot.get(edge)
            if slot is not None:
                weights[slot] = INFINITY
        return weights

    # ------------------------------------------------------------------
    # Failure-free closure fast path
    # ------------------------------------------------------------------
    def closure_answer(
        self,
        sources: list[tuple[int, float]],
        targets: list[tuple[int, float]],
        upper_bound: float = INFINITY,
    ) -> float:
        """One failure-free stitched answer via the precomputed closure.

        ``min(upper, min_{i,j} (lead_i + closure[i, j]) + tail_j)`` —
        two leg lookups and a submatrix min instead of a Dijkstra.
        Requires a closure matrix (:attr:`closure` not ``None``).
        """
        lead_ids = [self.dense_of[b] for b, lead in sources if lead < INFINITY]
        leads = [lead for _, lead in sources if lead < INFINITY]
        tail_ids = [self.dense_of[b] for b, tail in targets if tail < INFINITY]
        tails = [tail for _, tail in targets if tail < INFINITY]
        if not lead_ids or not tail_ids:
            return upper_bound
        through = self.closure[np.ix_(lead_ids, tail_ids)]
        totals = np.asarray(leads, dtype=np.float64)[:, None] + through
        totals += np.asarray(tails, dtype=np.float64)[None, :]
        best = float(totals.min())
        return best if best < upper_bound else upper_bound

    # ------------------------------------------------------------------
    # The batched stitch kernel
    # ------------------------------------------------------------------
    def stitch_batch(
        self,
        queries: list[tuple[list[tuple[int, float]], list[tuple[int, float]], float]],
        repaired: dict[int, list[list[float]]] | None = None,
        cross_failed: Iterable[tuple[int, int]] | None = None,
    ):
        """Stitch every query of one patch group in a single sweep.

        ``queries`` holds ``(sources, targets, upper_bound)`` triples —
        the answered legs of queries sharing one failure patch (the
        sharded dispatcher groups them this way, so repairs are applied
        once per group, not once per query).  Returns a float64 array
        of stitched answers, bitwise-equal to running
        :func:`~repro.sharding.oracle.stitch_over_borders` per query
        over the same patched adjacency.
        """
        batch = len(queries)
        num_borders = self.num_borders
        answers = np.empty(batch, dtype=np.float64)
        for position, (_, _, upper) in enumerate(queries):
            answers[position] = upper
        if not batch or not num_borders:
            return answers
        weights = self.patched_weights(repaired, cross_failed)
        num_keys = batch * num_borders

        # ---- seed: leads into dist, tails into the tail lane --------
        dist = np.full(num_keys, INFINITY)
        tails = np.full(num_keys, INFINITY)
        seed_keys: list[int] = []
        seed_vals: list[float] = []
        for position, (sources, targets, _) in enumerate(queries):
            base = position * num_borders
            for border, lead in sources:
                if lead < INFINITY:
                    seed_keys.append(base + self.dense_of[border])
                    seed_vals.append(lead)
            for border, tail in targets:
                if tail < INFINITY:
                    tails[base + self.dense_of[border]] = tail
        if not seed_keys:
            return answers
        seed_key = np.array(seed_keys, dtype=np.intp)
        seed_dist = np.array(seed_vals, dtype=np.float64)
        dist[seed_key] = seed_dist
        best = answers  # incumbents update in place
        query_of = np.repeat(np.arange(batch, dtype=np.intp), num_borders)
        min_weight = np.tile(self.min_weight, batch)
        # Direct seed->tail candidates arm the incumbents immediately,
        # exactly as the scalar walk checks the tail at every pop.
        seed_query = seed_key // num_borders
        seed_candidates = seed_dist + tails[seed_key]
        improving = seed_candidates < best[seed_query]
        np.minimum.at(best, seed_query[improving], seed_candidates[improving])
        frontier = np.unique(seed_key)

        # ---- frontier sweeps ----------------------------------------
        offsets = self.offsets
        degrees = self.degrees
        heads = self.heads
        while frontier.size:
            frontier_dist = dist[frontier]
            frontier_query = query_of[frontier]
            frontier_best = best[frontier_query]
            keep = (frontier_dist + min_weight[frontier % num_borders]) \
                < frontier_best
            frontier = frontier[keep]
            if not frontier.size:
                break
            frontier_dist = frontier_dist[keep]
            frontier_query = frontier_query[keep]
            frontier_best = frontier_best[keep]
            # Expand: flatten every kept key's row into one edge list
            # (cumsum trick; rows live at the key's border, shared by
            # every query in the group).
            frontier_border = frontier % num_borders
            row_offset = offsets[frontier_border]
            row_degree = degrees[frontier_border]
            total_edges = int(row_degree.sum())
            if total_edges:
                cumulative = np.cumsum(row_degree)
                edge_position = np.arange(total_edges, dtype=np.intp)
                edge_position += np.repeat(
                    row_offset - cumulative + row_degree, row_degree
                )
                candidate = np.repeat(frontier_dist, row_degree)
                candidate += weights[edge_position]
                passing = candidate < np.repeat(frontier_best, row_degree)
                head_key = np.repeat(
                    frontier_query * num_borders, row_degree
                )[passing]
                head_key += heads[edge_position[passing]]
                candidate = candidate[passing]
                improved = candidate < dist[head_key]
                head_key = head_key[improved]
                candidate = candidate[improved]
            else:
                head_key = frontier[:0]
            # Scatter-min, winner dedup, tail arming — batch-kernel form.
            if head_key.size:
                np.minimum.at(dist, head_key, candidate)
                new_dist = dist[head_key]
                winners = candidate == new_dist
                updated = head_key[winners]
                new_dist = new_dist[winners]
                tail_dist = tails[updated]
                updated_query = query_of[updated]
                arming = (new_dist + tail_dist) < best[updated_query]
                if arming.any():
                    np.minimum.at(
                        best,
                        updated_query[arming],
                        new_dist[arming] + tail_dist[arming],
                    )
                live = updated[new_dist < best[updated_query]]
            else:
                live = frontier[:0]
            # Exact-tie winners can duplicate a key; unique() keeps the
            # next frontier canonical (and sorted, for locality).
            frontier = np.unique(live)
        return answers
