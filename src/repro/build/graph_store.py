"""The build-graph container: one read-only binary file per build.

Workers must see the input graph exactly once, as flat buffers — never
through pickle (fork would share it for free, but spawn would re-pickle
the whole dict-of-dicts per worker, and pickling is neither versioned
nor checksummed).  This module reuses the DSOSNAP1 container machinery
from :mod:`repro.oracle.snapshot` — same framing, same
:class:`SectionWriter`, same :class:`SnapshotReader` — under its own
magic ``b"DSOBLD01"`` so build containers and serving snapshots can
never be confused for one another.

Contents:

* ``graph.*`` — the original input graph as a sorted CSR
  (:class:`FrozenGraph` sections);
* ``build.*`` — the *working* graph when it differs from the input
  (DISO-S builds on the sparsified input); absent otherwise;
* ``units.transit`` — the transit node labels, sorted;
* ``units.landmarks`` — the ADISO landmark labels, in selection order
  (order is meaningful: it fixes the landmark table's row order);
* header meta — the oracle family and every build parameter.

The container is a pure function of the inputs (sections are sorted
CSR; the header JSON is dumped with sorted keys; no timestamps), so
its exact bytes double as the checkpoint fingerprint: a resumed build
recomputes the container and compares bytes — any drift in graph,
parameters, or selection invalidates the spool loudly instead of
merging stale shards into a wrong index.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.graph.csr import FrozenGraph
from repro.graph.digraph import DiGraph
from repro.oracle.snapshot import (
    SectionWriter,
    SnapshotReader,
    _add_csr,
    _load_csr,
    pack_container,
)

BUILD_MAGIC = b"DSOBLD01"
BUILD_VERSION = 1


def build_container_bytes(
    graph: DiGraph,
    *,
    family: str,
    params: dict,
    transit: list[int],
    landmarks: list[int],
    build_graph: DiGraph | None = None,
) -> bytes:
    """Serialize a build's full input state to container bytes.

    ``params`` must be a JSON-safe dict of build parameters; it lands in
    the header meta verbatim (keys are sorted on dump, so equal dicts
    give equal bytes).
    """
    writer = SectionWriter()
    _add_csr(writer, "graph", FrozenGraph.from_digraph(graph))
    has_build_graph = build_graph is not None and build_graph is not graph
    if has_build_graph:
        _add_csr(writer, "build", FrozenGraph.from_digraph(build_graph))
    writer.add("units.transit", "q", sorted(transit))
    writer.add("units.landmarks", "q", list(landmarks))
    meta = {
        "family": family,
        "params": params,
        "has_build_graph": has_build_graph,
    }
    return pack_container(
        writer,
        magic=BUILD_MAGIC,
        version=BUILD_VERSION,
        engine="BuildGraph",
        meta=meta,
    )


@dataclass
class BuildGraph:
    """A loaded build container, rehydrated to dict graphs.

    ``graph`` is the original input; ``build_graph`` is the working
    graph the tree units run on (the same object unless the container
    carried a separate one).  Both are *roundtripped* through the
    sorted CSR — byte parity with a from-scratch build holds because
    every serialized artifact downstream is insertion-order
    independent (DESIGN.md §9).
    """

    graph: DiGraph
    build_graph: DiGraph
    transit: list[int]
    landmarks: list[int]
    family: str
    params: dict
    node_ids: list[int]


def load_build_graph(path: str | Path) -> BuildGraph:
    """Load a build container written by :func:`build_container_bytes`.

    Raises
    ------
    FormatError
        On bad magic/version, truncation, or checksum failure — the
        shared container validation from :mod:`repro.oracle.snapshot`.
    """
    reader = SnapshotReader(
        path, verify=True, magic=BUILD_MAGIC, version=BUILD_VERSION
    )
    try:
        frozen = _load_csr(reader, "graph")
        graph = frozen.to_digraph()
        meta = reader.meta
        if meta.get("has_build_graph") and reader.has_section(
            "build.node_ids"
        ):
            build_graph = _load_csr(reader, "build").to_digraph()
        else:
            build_graph = graph
        return BuildGraph(
            graph=graph,
            build_graph=build_graph,
            transit=list(reader.section("units.transit")),
            landmarks=list(reader.section("units.landmarks")),
            family=meta.get("family", "diso"),
            params=dict(meta.get("params", {})),
            node_ids=list(frozen.node_ids),
        )
    finally:
        # Everything was copied into dicts/lists; release the mapping.
        reader.close()
