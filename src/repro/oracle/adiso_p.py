"""ADISO-P — ADISO with partial detouring (Section 6.1).

Partial detouring answers a query in two phases:

1. **Initial path.**  A modified ADISO run with an *empty* affected set
   computes an initial overlay path ``P_init`` from ``s`` to ``t``:
   endpoint access legs are computed on ``(V, E \\ F)`` (they must be
   correct), but the middle is routed over the precomputed distance
   graph ``D`` *and* a second, much smaller overlay ``H`` — a distance
   graph of ``D`` itself, built from a k'-path cover of ``D`` with
   ``theta = infinity``.  Edges of ``H`` act as long shortcuts; a node
   ``u`` present in ``H`` takes its shortcuts only while the remaining
   lower-bound distance ``h(u, t)`` exceeds its longest shortcut, which
   the paper proves costs no extra accuracy.

2. **Detours.**  ``P_init`` is decomposed into overlay hops (Fig. 3).
   ``H`` hops whose tail is affected (via the second inverted index:
   an ``H`` node is affected when any affected ``D`` node participates
   in its bounded tree *on D*) are expanded into their underlying ``D``
   edges.  Each ``D`` hop ``(x, y)`` with an affected tail is replaced
   by a freshly computed detour ``d(x, y, F)`` (landmark-guided A* on
   ``G``); unaffected hops keep their precomputed weights.

The result is approximate — detours are local repairs of a path that was
optimal only without failures — with the small average error the paper
reports (2.9%).  When some hop has no detour at all the query falls back
to a full exact ADISO query (the paper's remedy; "such a case does not
happen at all in the experiments").
"""

from __future__ import annotations

import time
from heapq import heappop, heappush

from repro.graph.digraph import DiGraph, Edge
from repro.cover.isc import isc_path_cover
from repro.oracle.base import (
    INFINITY,
    QueryResult,
    QueryStats,
    normalize_failures,
)
from repro.oracle.adiso import ADISO
from repro.overlay.distance_graph import build_distance_graph
from repro.pathing.astar import astar_distance
from repro.pathing.bounded import bounded_dijkstra

_OverlayHop = tuple[int, int, str]  # (tail, head, layer) with layer in D/H


class ADISOPartial(ADISO):
    """ADISO with the partial detouring boosting technique.

    Parameters
    ----------
    graph:
        The input graph ``G``.
    tau, theta, transit, num_landmarks, alpha, landmarks, landmark_table,
    seed:
        As in :class:`ADISO`.
    tau_h:
        Rounds of the k'-path cover *of the distance graph* used to
        build the second overlay ``H``; the paper uses 4, always with
        ``theta = infinity`` ("for computing H, theta is set to infinity
        and tau is set to 4 for node reduction").
    exit_candidates:
        Extension knob (default 1 = the paper's behaviour): evaluate up
        to this many alternative initial routes — distinct exit access
        nodes ranked by failure-free value — and keep the cheapest
        detoured total.
    avoid_affected_bias:
        Extension knob (default 0 = the paper's behaviour, which picks
        the initial route ignoring failures entirely).  A positive bias
        multiplies, during initial-route selection only, the weight of
        every overlay edge whose tail is affected by ``(1 + bias)`` —
        steering the committed route away from failure-touched territory
        before detouring begins.  Selection-only: the returned distance
        still sums true weights and detours, so the answer stays an
        upper bound on the truth; only *which* route gets repaired
        changes.
    """

    name = "ADISO-P"
    exact = False

    def __init__(
        self,
        graph: DiGraph,
        tau: int = 4,
        theta: float = 1.0,
        transit: set[int] | frozenset[int] | None = None,
        num_landmarks: int = 10,
        alpha: float = 0.1,
        landmarks: list[int] | None = None,
        landmark_table=None,
        seed: int = 0,
        tau_h: int = 4,
        exit_candidates: int = 1,
        avoid_affected_bias: float = 0.0,
    ) -> None:
        super().__init__(
            graph,
            tau=tau,
            theta=theta,
            transit=transit,
            num_landmarks=num_landmarks,
            alpha=alpha,
            landmarks=landmarks,
            landmark_table=landmark_table,
            seed=seed,
        )
        started = time.perf_counter()
        self._build_h_overlay(tau_h)
        self.exit_candidates = max(1, exit_candidates)
        self.avoid_affected_bias = max(0.0, avoid_affected_bias)
        self.preprocess_seconds += time.perf_counter() - started

    # ------------------------------------------------------------------
    # Build plane hooks
    # ------------------------------------------------------------------
    def _build_h_overlay(self, tau_h: int) -> None:
        """Build the second overlay ``H`` over the finished ``D``.

        ``H`` is a distance graph *of the distance graph*, so it can
        only be built after every landmark shard is merged — the
        parallel build plane runs this on the coordinator, never in a
        worker.
        """
        overlay = self.distance_graph.graph
        cover_h = isc_path_cover(overlay, tau=tau_h, theta=INFINITY)
        h_cover = cover_h.cover
        if not h_cover:
            # Degenerate overlay (e.g. edgeless): keep one node so the H
            # structures exist; shortcuts then simply never trigger.
            h_cover = {min(overlay.nodes())}
        self.h_overlay, self.h_trees = build_distance_graph(overlay, h_cover)
        # Second inverted index: D node -> H roots whose bounded tree on
        # D contains it ("If x is affected, then y is also affected").
        node_to_h: dict[int, set[int]] = {}
        for root, tree in self.h_trees.items():
            for node in tree.nodes():
                node_to_h.setdefault(node, set()).add(root)
        self._node_to_h_roots = node_to_h

    @classmethod
    def _from_assembled(  # type: ignore[override]
        cls,
        graph: DiGraph,
        distance_graph,
        trees,
        *,
        landmark_table,
        tau_h: int = 4,
        exit_candidates: int = 1,
        avoid_affected_bias: float = 0.0,
        preprocess_seconds: float = 0.0,
    ) -> "ADISOPartial":
        """Adopt an assembled index, then derive ``H`` coordinator-side."""
        oracle = super()._from_assembled(
            graph,
            distance_graph,
            trees,
            landmark_table=landmark_table,
            preprocess_seconds=preprocess_seconds,
        )
        oracle._build_h_overlay(tau_h)
        oracle.exit_candidates = max(1, exit_candidates)
        oracle.avoid_affected_bias = max(0.0, avoid_affected_bias)
        return oracle

    # ------------------------------------------------------------------
    # Frozen query plane
    # ------------------------------------------------------------------
    def freeze(self):
        """Compile to a :class:`FrozenADISO` serving *exact* answers.

        Partial detouring's approximation lives in the query algorithm
        (repairing a failure-free initial route), not in the index, so
        the frozen plane serves the exact Algorithm 2 from the same
        compiled index instead — answers match ``ADISO``, not the
        approximate ADISO-P path.  The second overlay ``H`` is not
        compiled.
        """
        return super().freeze()

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def query_detailed(
        self,
        source: int,
        target: int,
        failed: set[Edge] | frozenset[Edge] | None = None,
    ) -> QueryResult:
        self._validate_endpoints(source, target)
        fail_set = normalize_failures(failed)
        stats = QueryStats()
        started = time.perf_counter()
        if source == target:
            stats.total_seconds = time.perf_counter() - started
            return QueryResult(distance=0.0, stats=stats)

        affected = self._find_affected_nodes(fail_set, stats)
        stats.affected_count = len(affected)

        access_start = time.perf_counter()
        forward = bounded_dijkstra(
            self.graph, source, self.transit, fail_set, "out"
        )
        backward = bounded_dijkstra(
            self.graph, target, self.transit, fail_set, "in"
        )
        stats.access_seconds = time.perf_counter() - access_start
        stats.graph_settled += (
            forward.settled_count + backward.settled_count
        )
        local = forward.dist.get(target, INFINITY)

        candidates = self._initial_overlay_paths(
            forward.access,
            backward.access,
            target,
            self.exit_candidates,
            affected,
        )
        if not candidates:
            # No overlay route at all; the direct answer is all there is.
            stats.total_seconds = time.perf_counter() - started
            return QueryResult(distance=local, stats=stats)

        best = local
        any_detoured = False
        for hops, entry, exit_node, _overlay_total in candidates:
            detoured = self._detoured_total(hops, affected, fail_set, stats)
            if detoured is None:
                continue
            any_detoured = True
            total = (
                forward.access[entry]
                + detoured
                + backward.access[exit_node]
            )
            if total < best:
                best = total
        if not any_detoured:
            # Every candidate had a hop with no detour: fall back to a
            # full exact query (the paper's remedy).
            fallback = super().query_detailed(source, target, fail_set)
            fallback.stats.used_fallback = True
            fallback.stats.total_seconds += time.perf_counter() - started
            return fallback
        stats.total_seconds = time.perf_counter() - started
        return QueryResult(distance=best, stats=stats)

    # ------------------------------------------------------------------
    # Phase 1: initial path over D + H shortcuts (failure-free middle)
    # ------------------------------------------------------------------
    def _initial_overlay_paths(
        self,
        seeds: dict[int, float],
        into_target: dict[int, float],
        target: int,
        max_candidates: int = 1,
        affected: set[int] | frozenset[int] = frozenset(),
    ) -> list[tuple[list[_OverlayHop], int, int, float]]:
        """A* over ``D`` with ``H`` shortcuts; returns candidate routes.

        Each candidate is ``(hops, entry_access_node, exit_access_node,
        failure-free value)``; the list is ordered by value (best first)
        and holds up to ``max_candidates`` distinct exit nodes.  Empty
        when no overlay route exists.
        """
        overlay = self.distance_graph.graph
        h_overlay = self.h_overlay.graph
        h_nodes = self.h_overlay.transit
        heuristic = self.landmarks.heuristic_to(target)

        bias = self.avoid_affected_bias
        affected_h: set[int] = set()
        if bias > 0.0 and affected:
            node_to_h = self._node_to_h_roots
            for lower in affected:
                roots = node_to_h.get(lower)
                if roots:
                    affected_h.update(roots)

        dist: dict[int, float] = {}
        parent: dict[int, tuple[int, str] | None] = {}
        heap: list[tuple[float, int]] = []
        for node, d in seeds.items():
            dist[node] = d
            parent[node] = None
            heappush(heap, (d + heuristic(node), node))
        settled: set[int] = set()
        best_value = INFINITY
        best_end: int | None = None

        while heap:
            cost, node = heappop(heap)
            if node in settled:
                continue
            if cost >= best_value:
                break
            settled.add(node)
            node_dist = dist[node]
            tail_distance = into_target.get(node)
            if tail_distance is not None:
                candidate = node_dist + tail_distance
                if candidate < best_value:
                    best_value = candidate
                    best_end = node

            # Shortcut rule: offer the H edges while the remaining
            # distance provably exceeds the longest shortcut out of this
            # node.  Deviation from the paper (documented in DESIGN.md):
            # the D edges stay available too — relaxing *only* shortcuts
            # can dead-end when the next access node is reachable solely
            # through non-H overlay nodes; the A* ordering still prefers
            # the long shortcuts, preserving the intended speed-up.
            relaxations: list[tuple[dict[int, float], str]] = []
            if node in h_nodes:
                h_out = h_overlay.successors(node)
                if h_out and heuristic(node) > max(h_out.values()):
                    relaxations.append((h_out, "H"))
            relaxations.append((overlay.successors(node), "D"))
            penalised = bias > 0.0 and (
                node in affected or (node in affected_h)
            )
            for neighbors, layer in relaxations:
                for head, weight in neighbors.items():
                    if head in settled or head == node:
                        continue
                    if penalised:
                        weight = weight * (1.0 + bias)
                    candidate = node_dist + weight
                    if candidate < dist.get(head, INFINITY):
                        dist[head] = candidate
                        parent[head] = (node, layer)
                        heappush(heap, (candidate + heuristic(head), head))

        if best_end is None:
            return []
        # Rank every labelled exit: each label's parent chain is a real
        # failure-free route of exactly that value (labels of unsettled
        # exits may exceed their optimum, which only demotes them).
        ranked = sorted(
            (
                (dist[node] + tail, node)
                for node, tail in into_target.items()
                if node in dist
            ),
        )[:max_candidates]
        candidates: list[tuple[list[_OverlayHop], int, int, float]] = []
        for value, end in ranked:
            hops: list[_OverlayHop] = []
            node = end
            while True:
                step = parent[node]
                if step is None:
                    break
                prev, layer = step
                hops.append((prev, node, layer))
                node = prev
            hops.reverse()
            candidates.append((hops, node, end, value))
        return candidates

    # ------------------------------------------------------------------
    # Phase 2: per-hop detouring
    # ------------------------------------------------------------------
    def _detoured_total(
        self,
        hops: list[_OverlayHop],
        affected: set[int],
        failed: frozenset[Edge],
        stats: QueryStats,
    ) -> float | None:
        """Sum hop costs, detouring affected hops; None when impossible."""
        affected_h: set[int] = set()
        if affected:
            node_to_h = self._node_to_h_roots
            for node in affected:
                roots = node_to_h.get(node)
                if roots:
                    affected_h.update(roots)

        overlay = self.distance_graph.graph

        # Expand H shortcuts whose tail is affected into their D edges,
        # then flag each segment whose tail is affected.
        segments: list[tuple[int, int, str, bool]] = []
        for tail, head, layer in hops:
            if layer == "H":
                if tail not in affected_h:
                    segments.append((tail, head, "H", False))
                    continue
                d_path = self.h_trees[tail].path_to(head)
                if d_path is None:
                    return None
                for x, y in d_path:
                    segments.append((x, y, "D", x in affected))
            else:
                segments.append((tail, head, "D", tail in affected))

        # Merge maximal runs of consecutive affected segments into one
        # partial detour each ("detours of certain edge-disjoint
        # sub-paths of P_init having failures", Section 6.1): a single
        # A* per run gives the detour the full sub-path's slack.
        total = 0.0
        fail_edges = set(failed)
        index = 0
        while index < len(segments):
            x, y, layer, hit = segments[index]
            if not hit:
                source_graph = (
                    self.h_overlay.graph if layer == "H" else overlay
                )
                total += source_graph.weight(x, y)
                index += 1
                continue
            run_start = x
            run_end = y
            index += 1
            while index < len(segments) and segments[index][3]:
                run_end = segments[index][1]
                index += 1
            tick = time.perf_counter()
            detour = astar_distance(
                self.graph,
                run_start,
                run_end,
                self.landmarks.heuristic_to(run_end),
                fail_edges,
            )
            stats.recompute_seconds += time.perf_counter() - tick
            stats.recomputed_nodes += 1
            if detour == INFINITY:
                return None
            total += detour
        return total

    # ------------------------------------------------------------------
    # Sizing
    # ------------------------------------------------------------------
    def index_entries(self) -> dict[str, int]:
        entries = super().index_entries()
        entries["h_overlay_nodes"] = self.h_overlay.num_nodes
        entries["h_overlay_edges"] = self.h_overlay.num_edges
        entries["h_tree_nodes"] = sum(
            len(tree) for tree in self.h_trees.values()
        )
        return entries
