"""Social-network scenario: blocked users as recoverable edge failures.

The paper's Example 4: in a social network, a user blocking another
removes the edge between them — temporarily, until unblocked.  Distance
queries ("how far is this account from that one, ignoring blocks?")
are distance sensitivity queries.  On dense scale-free graphs the paper
deploys DISO-S, the sparsified variant, trading a small bounded error
for query speed.

Run with::

    python examples/social_network_blocking.py
"""

from __future__ import annotations

import random
import time

from repro import DISO, DISOSparse, DijkstraOracle, scale_free_network


def main() -> None:
    graph = scale_free_network(800, attach=5, seed=11)
    print(f"network: {graph.number_of_nodes()} users, "
          f"{graph.number_of_edges()} follow edges, "
          f"max degree {graph.max_degree()}")

    exact = DISO(graph, tau=3, theta=16.0)
    sparse = DISOSparse(graph, beta=1.5, tau=3, theta=16.0)
    reference = DijkstraOracle(graph)
    removed = len(sparse.input_sparsification.removed)
    print(f"DISO-S sparsification dropped {removed} edges "
          f"({sparse.input_sparsification.removal_ratio:.1%}) "
          f"with stretch bound beta={sparse.beta}")

    rng = random.Random(5)
    users = sorted(graph.nodes())
    edges = sorted(graph.edge_set())

    print("\n10 queries, each with a personal block list:")
    exact_time = sparse_time = 0.0
    worst_error = 0.0
    for _ in range(10):
        a, b = rng.sample(users, 2)
        blocks = set(rng.sample(edges, 12))  # this user's block list

        started = time.perf_counter()
        true = exact.query(a, b, blocks)
        exact_time += time.perf_counter() - started

        started = time.perf_counter()
        estimate = sparse.query(a, b, blocks)
        sparse_time += time.perf_counter() - started

        assert abs(true - reference.query(a, b, blocks)) < 1e-9
        if true > 0 and true != float("inf"):
            worst_error = max(worst_error, (estimate - true) / true)
        print(f"  d({a:3d}, {b:3d} | {len(blocks)} blocks) "
              f"= {true:7.3f}   DISO-S: {estimate:7.3f}")

    print(f"\nDISO total:   {exact_time * 1000:.1f} ms")
    print(f"DISO-S total: {sparse_time * 1000:.1f} ms")
    print(f"worst DISO-S relative error: {worst_error:.2%}")


if __name__ == "__main__":
    main()
