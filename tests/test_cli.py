"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.graph.io import write_edge_list
from repro.graph.generators import road_network


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_stats_defaults(self):
        args = build_parser().parse_args(["stats"])
        assert args.command == "stats"
        assert args.scale == 0.5

    def test_query_parsing(self):
        args = build_parser().parse_args(
            ["query", "3", "9", "--fail", "1,2", "--fail", "4,5"]
        )
        assert args.source == 3
        assert args.target == 9
        assert args.fail == ["1,2", "4,5"]

    def test_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "table99"])


class TestMain:
    def test_stats(self, capsys):
        assert main(["stats", "--scale", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "NY" in out

    def test_query_on_dataset(self, capsys):
        code = main(
            [
                "query", "0", "50",
                "--dataset", "NY",
                "--scale", "0.2",
                "--oracle", "diso",
                "--fail", "0,1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "distance" in out
        assert "DISO" in out

    def test_query_on_file(self, tmp_path, capsys):
        graph = road_network(6, 6, seed=1)
        path = tmp_path / "g.tsv"
        write_edge_list(graph, path)
        code = main(
            ["query", "0", "35", "--graph-file", str(path), "--tau", "2"]
        )
        assert code == 0
        assert "reachable     : True" in capsys.readouterr().out

    def test_query_dijkstra_oracle(self, capsys):
        code = main(
            ["query", "0", "10", "--dataset", "NY", "--scale", "0.2",
             "--oracle", "dijkstra"]
        )
        assert code == 0
        assert "DI" in capsys.readouterr().out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "table2", "--scale", "0.2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_experiment_table6(self, capsys):
        assert main(["experiment", "table6", "--scale", "0.2"]) == 0
        assert "Index size" in capsys.readouterr().out

    def test_experiment_theta(self, capsys):
        code = main(
            ["experiment", "theta", "--scale", "0.2", "--queries", "3"]
        )
        assert code == 0
        assert "theta" in capsys.readouterr().out

    def test_build_and_query_with_index(self, tmp_path, capsys):
        index = tmp_path / "index.json"
        code = main(
            [
                "build", str(index),
                "--dataset", "NY",
                "--scale", "0.2",
                "--tau", "3",
            ]
        )
        assert code == 0
        assert index.exists()
        capsys.readouterr()
        code = main(
            ["query", "0", "40", "--index-file", str(index), "--fail", "0,1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "distance" in out

    def test_malformed_fail_flag(self):
        with pytest.raises(SystemExit):
            main(
                ["query", "0", "1", "--dataset", "NY", "--scale", "0.2",
                 "--fail", "nonsense"]
            )
        with pytest.raises(SystemExit):
            main(
                ["query", "0", "1", "--dataset", "NY", "--scale", "0.2",
                 "--fail", "a,b"]
            )

    def test_query_dimacs_graph_file(self, tmp_path, capsys):
        from repro.graph.io import write_dimacs

        graph = road_network(6, 6, seed=1)
        path = tmp_path / "g.gr"
        write_dimacs(graph, path)
        code = main(
            ["query", "0", "35", "--graph-file", str(path),
             "--format", "dimacs", "--tau", "2"]
        )
        assert code == 0
        assert "distance" in capsys.readouterr().out

    def test_experiment_replay(self, capsys):
        code = main(
            ["experiment", "replay", "--scale", "0.2", "--queries", "4"]
        )
        assert code == 0
        assert "DSO (DISO)" in capsys.readouterr().out

    def test_build_adiso(self, tmp_path, capsys):
        index = tmp_path / "adiso.json"
        code = main(
            [
                "build", str(index),
                "--oracle", "adiso",
                "--dataset", "NY",
                "--scale", "0.2",
            ]
        )
        assert code == 0
        assert "ADISO" in capsys.readouterr().out


class TestServingCommands:
    def test_snapshot_then_serve_bench(self, tmp_path, capsys):
        snap = tmp_path / "ny.dsosnap"
        code = main(
            ["snapshot", str(snap), "--dataset", "NY", "--scale", "0.1",
             "--tau", "3"]
        )
        assert code == 0
        assert snap.exists()
        out = capsys.readouterr().out
        assert "engine        : FrozenDISO" in out
        assert "sections" in out

        code = main(
            ["serve-bench", str(snap), "--workers", "1,2", "--queries", "30"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "seq" in out
        assert "speedup" in out

    def test_snapshot_adiso(self, tmp_path, capsys):
        snap = tmp_path / "ny-adiso.dsosnap"
        code = main(
            ["snapshot", str(snap), "--dataset", "NY", "--scale", "0.1",
             "--oracle", "adiso", "--tau", "3"]
        )
        assert code == 0
        assert "FrozenADISO" in capsys.readouterr().out

    def test_serve_bench_zipf_cached(self, tmp_path, capsys):
        snap = tmp_path / "ny-cache.dsosnap"
        main(
            ["snapshot", str(snap), "--dataset", "NY", "--scale", "0.1",
             "--tau", "3"]
        )
        capsys.readouterr()
        code = main(
            ["serve-bench", str(snap), "--workers", "1", "--queries", "60",
             "--workload", "zipf", "--cache-size", "256"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "zipf workload" in out
        assert "cache     : 256 entries" in out
        assert "hit%" in out
        # Zipf repeats pairs within one batch: the dedup stage alone
        # guarantees a non-zero hit count on the very first run.
        row = next(
            line for line in out.splitlines()
            if line.strip().startswith("1 ")
        )
        assert float(row.split()[7].rstrip("%")) > 0.0

    def test_serve_bench_rejects_bad_workers(self, tmp_path):
        snap = tmp_path / "x.dsosnap"
        main(
            ["snapshot", str(snap), "--dataset", "NY", "--scale", "0.1",
             "--tau", "3"]
        )
        with pytest.raises(SystemExit):
            main(["serve-bench", str(snap), "--workers", "zero"])
        with pytest.raises(SystemExit):
            main(["serve-bench", str(snap), "--workers", "0"])

    def test_build_boosted_families(self, tmp_path, capsys):
        for name in ("diso-s", "adiso-p"):
            index = tmp_path / f"{name}.json"
            code = main(
                ["build", str(index), "--oracle", name, "--dataset", "NY",
                 "--scale", "0.1", "--tau", "3"]
            )
            assert code == 0
            assert index.exists()
        capsys.readouterr()
        code = main(
            ["query", "0", "20", "--index-file", str(tmp_path / "diso-s.json")]
        )
        assert code == 0
        assert "DISO-S" in capsys.readouterr().out


class TestParallelBuildCLI:
    def _graph_file(self, tmp_path):
        graph = road_network(5, 5, seed=2)
        path = tmp_path / "g.tsv"
        write_edge_list(graph, path)
        return path

    def test_build_jobs_with_profile(self, tmp_path, capsys):
        graph_file = self._graph_file(tmp_path)
        index = tmp_path / "idx.json"
        profile = tmp_path / "profile.json"
        code = main(
            ["build", str(index),
             "--graph-file", str(graph_file),
             "--jobs", "2", "--tau", "3",
             "--spool", str(tmp_path / "spool"),
             "--profile", str(profile)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "build profile" in out
        assert "spt_fanout" in out
        assert index.exists()
        assert profile.exists()
        import json

        data = json.loads(profile.read_text())
        assert data["jobs"] == 2
        assert data["built_units"] == data["total_units"]

    def test_build_jobs_rejects_diso_b(self, tmp_path):
        graph_file = self._graph_file(tmp_path)
        with pytest.raises(SystemExit, match="diso-b"):
            main(
                ["build", str(tmp_path / "idx.json"),
                 "--graph-file", str(graph_file),
                 "--jobs", "1", "--oracle", "diso-b"]
            )

    def test_profile_requires_jobs(self, tmp_path):
        graph_file = self._graph_file(tmp_path)
        with pytest.raises(SystemExit, match="--jobs"):
            main(
                ["build", str(tmp_path / "idx.json"),
                 "--graph-file", str(graph_file), "--profile"]
            )

    def test_snapshot_from_checkpoint(self, tmp_path, capsys):
        graph_file = self._graph_file(tmp_path)
        spool = tmp_path / "spool"
        code = main(
            ["build", str(tmp_path / "idx.json"),
             "--graph-file", str(graph_file),
             "--jobs", "0", "--tau", "3",
             "--spool", str(spool)]
        )
        assert code == 0
        capsys.readouterr()
        snap = tmp_path / "oracle.dsosnap"
        code = main(
            ["snapshot", str(snap), "--from-checkpoint", str(spool)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed" in out
        assert snap.exists()
        from repro.oracle.snapshot import load_snapshot

        oracle = load_snapshot(snap)
        assert oracle.query(0, 12, frozenset()) >= 0.0


class TestLint:
    def test_lint_parser_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.paths == ["src"]
        assert args.output_format == "text"

    def test_lint_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("rows = [1, 2, 3]\n", encoding="utf-8")
        assert main(["lint", str(clean)]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_lint_dirty_file_exits_one(self, tmp_path, capsys):
        dirty = tmp_path / "src" / "repro" / "oracle"
        dirty.mkdir(parents=True)
        target = dirty / "dirty.py"
        target.write_text(
            "rows = [n for n in set(values)]\n", encoding="utf-8"
        )
        assert main(["lint", str(target)]) == 1
        out = capsys.readouterr().out
        assert "DSO101" in out

    def test_lint_json_output_file(self, tmp_path, capsys):
        import json as json_module

        dirty = tmp_path / "src" / "repro" / "oracle"
        dirty.mkdir(parents=True)
        (dirty / "dirty.py").write_text(
            "bad = answer == QUERY_ERROR\n", encoding="utf-8"
        )
        report_path = tmp_path / "lint.json"
        code = main(
            ["lint", str(dirty), "--format", "json",
             "--output", str(report_path)]
        )
        assert code == 1
        capsys.readouterr()
        payload = json_module.loads(
            report_path.read_text(encoding="utf-8")
        )
        assert payload["findings"][0]["rule"] == "DSO301"

    def test_lint_show_suppressed(self, tmp_path, capsys):
        source = (
            "rows = [n for n in set(values)]"
            "  # dsolint: disable=DSO101 -- fixture justification\n"
        )
        scoped = tmp_path / "src" / "repro" / "oracle"
        scoped.mkdir(parents=True)
        (scoped / "waived.py").write_text(source, encoding="utf-8")
        assert main(["lint", str(scoped), "--show-suppressed"]) == 0
        out = capsys.readouterr().out
        assert "fixture justification" in out
