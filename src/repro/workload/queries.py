"""Query workload generation (Section 7.1 "Query Generation").

A query is ``(s, t, F)``.  The paper generates ``F`` in two parts:

* ``f_gen`` **essential** failures: iteratively pick a random edge *on
  the current shortest path* ``P(s, t, F)``, fail it, and recompute —
  so every one of these failures actually forces the answer to change;
* **random** failures: every remaining edge fails independently with
  probability ``p`` (default 0.05%), modelling real failures that are
  oblivious to the query endpoints.

Defaults are the paper's: ``f_gen = 5``, ``p = 0.0005``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.graph.digraph import DiGraph, Edge
from repro.pathing.dijkstra import shortest_path


@dataclass(frozen=True)
class Query:
    """One distance sensitivity query ``(s, t, F)``.

    Attributes
    ----------
    source, target:
        Endpoints.
    failed:
        The failed edge set ``F``.
    essential_count:
        How many members of ``failed`` were generated as essential
        (on-path) failures; the rest are random background failures.
    """

    source: int
    target: int
    failed: frozenset[Edge]
    essential_count: int = 0

    @property
    def num_failures(self) -> int:
        """``|F|``."""
        return len(self.failed)


def essential_failures(
    graph: DiGraph,
    source: int,
    target: int,
    count: int,
    rng: random.Random,
) -> set[Edge]:
    """Generate up to ``count`` on-path failures for ``(source, target)``.

    Repeatedly fails a random edge of the current ``P(s, t, F)``.  Stops
    early when the endpoints become disconnected (no further edge can be
    essential).
    """
    failed: set[Edge] = set()
    for _ in range(count):
        path = shortest_path(graph, source, target, failed)
        if not path:
            break
        edge = path[rng.randrange(len(path))]
        failed.add(edge)
    return failed


def random_failures(
    graph: DiGraph,
    probability: float,
    rng: random.Random,
    exclude: set[Edge] | None = None,
) -> set[Edge]:
    """Fail each edge independently with ``probability``.

    Implemented by sampling the binomial failure count and then drawing
    that many distinct edges, which is O(failures) instead of O(m) per
    query on large graphs.
    """
    if probability <= 0.0:
        return set()
    edges = [(tail, head) for tail, head, _ in graph.edges()]
    count = _binomial(len(edges), probability, rng)
    if count == 0:
        return set()
    chosen = set(rng.sample(edges, min(count, len(edges))))
    if exclude:
        chosen -= exclude
    return chosen


def _binomial(n: int, p: float, rng: random.Random) -> int:
    """Sample Binomial(n, p) by geometric gap skipping.

    Runs in O(n * p) expected time — cheap for the tiny failure rates
    used here (p = 0.05%) even on large edge sets.
    """
    if p <= 0.0 or n <= 0:
        return 0
    if p >= 1.0:
        return n
    log_q = math.log1p(-p)
    count = 0
    position = -1
    while True:
        gap = int(math.log(1.0 - rng.random()) / log_q)
        position += gap + 1
        if position >= n:
            return count
        count += 1


def generate_query(
    graph: DiGraph,
    rng: random.Random,
    f_gen: int = 5,
    p: float = 0.0005,
    nodes: list[int] | None = None,
) -> Query:
    """Generate one query with the paper's two-part failure model."""
    if nodes is None:
        nodes = sorted(graph.nodes())
    while True:
        source = nodes[rng.randrange(len(nodes))]
        target = nodes[rng.randrange(len(nodes))]
        if source != target:
            break
    essential = essential_failures(graph, source, target, f_gen, rng)
    background = random_failures(graph, p, rng, exclude=essential)
    return Query(
        source=source,
        target=target,
        failed=frozenset(essential | background),
        essential_count=len(essential),
    )


def generate_queries(
    graph: DiGraph,
    count: int,
    f_gen: int = 5,
    p: float = 0.0005,
    seed: int = 0,
    nodes: list[int] | None = None,
) -> list[Query]:
    """Generate ``count`` queries (the paper averages over 100).

    Deterministic given ``seed``.
    """
    rng = random.Random(seed)
    if nodes is None:
        nodes = sorted(graph.nodes())
    return [
        generate_query(graph, rng, f_gen=f_gen, p=p, nodes=nodes)
        for _ in range(count)
    ]


def zipf_rank(rng: random.Random, cumulative: list[float]) -> int:
    """Sample a 0-based rank from a finite zipf distribution.

    ``cumulative`` is the normalized cumulative weight list of the
    rank pool (``cumulative[-1] == 1.0``); inverse-CDF sampling via
    bisection keeps the draw O(log pool).
    """
    import bisect

    return bisect.bisect_left(cumulative, rng.random())


def _zipf_cumulative(pool_size: int, skew: float) -> list[float]:
    """Normalized cumulative weights ``w_r ∝ 1 / (r + 1)^skew``."""
    weights = [1.0 / float(rank + 1) ** skew for rank in range(pool_size)]
    total = sum(weights)
    cumulative = []
    running = 0.0
    for weight in weights:
        running += weight / total
        cumulative.append(running)
    cumulative[-1] = 1.0  # guard against rounding shortfall
    return cumulative


def generate_zipf_queries(
    graph: DiGraph,
    count: int,
    pool_size: int = 50,
    skew: float = 1.1,
    variants_per_pair: int = 3,
    f_gen: int = 2,
    p: float = 0.0005,
    seed: int = 0,
    nodes: list[int] | None = None,
) -> list[Query]:
    """A zipf-skewed repeated-pair workload (seeded, deterministic).

    Real query traffic concentrates on a small hot set of node pairs
    (Deep Distance Sensitivity Oracles, PAPERS.md), and each hot pair
    recurs under a recurring handful of avoided-edge sets — the
    paper's Example 1 commuter re-asking the same route around
    today's closures.  This generator models both concentrations:

    * a pool of ``pool_size`` distinct ``(s, t)`` pairs is ranked and
      sampled with zipf weight ``1/rank^skew`` — rank 1 dominates;
    * each pair owns ``variants_per_pair`` precomputed failure-set
      variants (the paper's essential + random two-part model, plus
      the failure-free variant at index 0), and every occurrence of
      the pair draws uniformly among them — so the full ``(s, t, F)``
      triple *recurs exactly*, which is what a result cache keyed on
      the canonical triple can exploit.

    Deterministic given ``seed``: the pair pool, the variants, and the
    sampled sequence all derive from one seeded generator.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    if pool_size < 1:
        raise ValueError("pool_size must be >= 1")
    if skew <= 0:
        raise ValueError("skew must be > 0")
    if variants_per_pair < 1:
        raise ValueError("variants_per_pair must be >= 1")
    rng = random.Random(seed)
    if nodes is None:
        nodes = sorted(graph.nodes())
    if len(nodes) < 2:
        raise ValueError("need at least two nodes to form query pairs")

    pairs: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    max_pairs = min(pool_size, len(nodes) * (len(nodes) - 1))
    while len(pairs) < max_pairs:
        source = nodes[rng.randrange(len(nodes))]
        target = nodes[rng.randrange(len(nodes))]
        if source == target or (source, target) in seen:
            continue
        seen.add((source, target))
        pairs.append((source, target))

    variants: list[list[tuple[frozenset[Edge], int]]] = []
    for source, target in pairs:
        pair_variants: list[tuple[frozenset[Edge], int]] = [(frozenset(), 0)]
        for _ in range(variants_per_pair - 1):
            essential = essential_failures(graph, source, target, f_gen, rng)
            background = random_failures(graph, p, rng, exclude=essential)
            pair_variants.append(
                (frozenset(essential | background), len(essential))
            )
        variants.append(pair_variants)

    cumulative = _zipf_cumulative(len(pairs), skew)
    queries: list[Query] = []
    for _ in range(count):
        rank = zipf_rank(rng, cumulative)
        source, target = pairs[rank]
        failed, essential_count = variants[rank][
            rng.randrange(len(variants[rank]))
        ]
        queries.append(
            Query(
                source=source,
                target=target,
                failed=failed,
                essential_count=essential_count,
            )
        )
    return queries
