"""Tests for the library extensions: DISO-B, node failures, paths,
serialization, and the parallel query engine."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.fddo import FDDOOracle
from repro.exceptions import FormatError, QueryError
from repro.oracle.adiso import ADISO
from repro.oracle.base import INFINITY
from repro.oracle.diso import DISO
from repro.oracle.diso_bi import DISOBidirectional
from repro.oracle.parallel import QueryEngine
from repro.oracle.paths import query_path, validate_path
from repro.oracle.serialize import load_index, save_index
from repro.pathing.dijkstra import shortest_distance
from repro.workload.queries import generate_queries
from util import random_failures_from, random_graph


class TestDISOBidirectional:
    def test_exact_on_fixture(self, small_road):
        oracle = DISOBidirectional(small_road, tau=3, theta=1.0)
        failed = {(0, 1), (40, 41), (100, 101)}
        for target in (3, 60, 143):
            assert oracle.query(0, target, failed) == pytest.approx(
                shortest_distance(small_road, 0, target, failed)
            )

    def test_matches_unidirectional_diso(self, small_road):
        uni = DISO(small_road, tau=3, theta=1.0)
        bi = DISOBidirectional(small_road, transit=uni.transit)
        queries = generate_queries(small_road, 10, f_gen=3, p=0.002, seed=4)
        for q in queries:
            assert bi.query(q.source, q.target, q.failed) == pytest.approx(
                uni.query(q.source, q.target, q.failed)
            )

    def test_no_index_mutation(self, small_road):
        oracle = DISOBidirectional(small_road, tau=3, theta=1.0)
        before = {
            (t, h): w for t, h, w in oracle.distance_graph.graph.edges()
        }
        oracle.query(0, 143, failed={(0, 1), (70, 71)})
        after = {
            (t, h): w for t, h, w in oracle.distance_graph.graph.edges()
        }
        assert before == after


class TestNodeFailures:
    def test_matches_incident_edge_failures(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        victim = 55
        incident = {(victim, h) for h in small_road.successors(victim)}
        incident |= {(t, victim) for t in small_road.predecessors(victim)}
        assert oracle.query_avoiding_nodes(0, 120, {victim}) == (
            pytest.approx(
                shortest_distance(small_road, 0, 120, incident)
            )
        )

    def test_failed_endpoint_raises(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        with pytest.raises(QueryError):
            oracle.query_avoiding_nodes(0, 120, {0})
        with pytest.raises(QueryError):
            oracle.query_avoiding_nodes(0, 120, {120})

    def test_mixed_node_and_edge_failures(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        victim = 55
        extra = {(0, 1)}
        incident = {(victim, h) for h in small_road.successors(victim)}
        incident |= {(t, victim) for t in small_road.predecessors(victim)}
        assert oracle.query_avoiding_nodes(
            0, 120, {victim}, failed=extra
        ) == pytest.approx(
            shortest_distance(small_road, 0, 120, incident | extra)
        )

    def test_unknown_failed_node_ignored(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        base = oracle.query(0, 120)
        assert oracle.query_avoiding_nodes(0, 120, {99_999}) == (
            pytest.approx(base)
        )


class TestQueryPath:
    def test_same_node(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        distance, path = query_path(oracle, 9, 9)
        assert distance == 0.0
        assert path == []

    def test_path_matches_distance(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        failed = {(0, 1), (50, 51), (99, 100)}
        distance, path = query_path(oracle, 0, 143, failed)
        assert distance == pytest.approx(
            shortest_distance(small_road, 0, 143, failed)
        )
        assert path is not None
        assert validate_path(oracle, path, 0, 143, failed) == (
            pytest.approx(distance)
        )

    def test_unreachable_returns_none(self):
        from repro.graph.digraph import DiGraph

        g = DiGraph([(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)])
        oracle = DISO(g, transit={1})
        distance, path = query_path(oracle, 0, 2, {(1, 2)})
        assert distance == INFINITY
        assert path is None

    def test_validate_rejects_bad_paths(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        with pytest.raises(ValueError):
            validate_path(oracle, [], 0, 1)
        with pytest.raises(ValueError):
            validate_path(oracle, [(5, 6)], 0, 6)
        with pytest.raises(ValueError):
            validate_path(oracle, [(-1, -2)], -1, -2)


class TestSerialization:
    def roundtrip(self, oracle):
        buffer = io.StringIO()
        save_index(oracle, buffer)
        buffer.seek(0)
        return load_index(buffer)

    def test_diso_roundtrip(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        loaded = self.roundtrip(oracle)
        assert isinstance(loaded, DISO)
        assert loaded.transit == oracle.transit
        assert loaded.distance_graph.graph == oracle.distance_graph.graph
        failed = {(0, 1), (70, 71)}
        assert loaded.query(0, 143, failed) == pytest.approx(
            oracle.query(0, 143, failed)
        )

    def test_adiso_roundtrip(self, small_road):
        oracle = ADISO(small_road, tau=3, num_landmarks=4, seed=1)
        loaded = self.roundtrip(oracle)
        assert isinstance(loaded, ADISO)
        assert loaded.landmarks.landmarks == oracle.landmarks.landmarks
        failed = {(0, 1), (70, 71)}
        assert loaded.query(0, 143, failed) == pytest.approx(
            oracle.query(0, 143, failed)
        )

    def test_bidirectional_roundtrip(self, small_road):
        oracle = DISOBidirectional(small_road, tau=3, theta=1.0)
        loaded = self.roundtrip(oracle)
        assert isinstance(loaded, DISOBidirectional)
        assert loaded.query(0, 143) == pytest.approx(oracle.query(0, 143))

    def test_file_roundtrip(self, tmp_path, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        path = tmp_path / "index.json"
        save_index(oracle, path)
        loaded = load_index(path)
        assert loaded.query(0, 100) == pytest.approx(oracle.query(0, 100))

    def test_version_check(self):
        with pytest.raises(FormatError):
            load_index(io.StringIO('{"format_version": 999}'))

    def test_unknown_class_check(self):
        document = '{"format_version": 1, "oracle": "Nonsense"}'
        with pytest.raises(FormatError):
            load_index(io.StringIO(document))


class TestQueryEngine:
    def test_parallel_matches_sequential(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        engine = QueryEngine(oracle, threads=4)
        queries = generate_queries(small_road, 16, f_gen=3, p=0.002, seed=6)
        parallel = engine.run(queries)
        sequential = engine.run_sequential(queries)
        assert parallel.answers == pytest.approx(sequential.answers)
        assert parallel.threads == 4
        assert sequential.threads == 1
        assert parallel.queries_per_second > 0

    def test_rejects_fddo(self, small_road):
        oracle = FDDOOracle(small_road, num_landmarks=4, seed=1)
        with pytest.raises(ValueError):
            QueryEngine(oracle)

    def test_rejects_bad_thread_count(self, small_road):
        oracle = DISO(small_road, tau=3, theta=1.0)
        with pytest.raises(ValueError):
            QueryEngine(oracle, threads=0)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    fail_seed=st.integers(min_value=0, max_value=10_000),
)
def test_serialization_roundtrip_random(seed, fail_seed):
    """Round-tripped indices answer like the original on random inputs."""
    graph = random_graph(seed)
    oracle = DISO(graph, tau=2, theta=4.0)
    buffer = io.StringIO()
    save_index(oracle, buffer)
    buffer.seek(0)
    loaded = load_index(buffer)
    failed = random_failures_from(graph, fail_seed, 6)
    for s, t in [(0, 15), (15, 0), (7, 23)]:
        assert loaded.query(s, t, failed) == pytest.approx(
            oracle.query(s, t, failed)
        )


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    fail_seed=st.integers(min_value=0, max_value=10_000),
    s=st.integers(min_value=0, max_value=29),
    t=st.integers(min_value=0, max_value=29),
)
def test_diso_bidirectional_exact_random(seed, fail_seed, s, t):
    graph = random_graph(seed)
    oracle = DISOBidirectional(graph, tau=2, theta=4.0)
    failed = random_failures_from(graph, fail_seed, 7)
    expected = shortest_distance(graph, s, t, failed)
    assert oracle.query(s, t, failed) == pytest.approx(expected)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    fail_seed=st.integers(min_value=0, max_value=10_000),
    s=st.integers(min_value=0, max_value=29),
    t=st.integers(min_value=0, max_value=29),
)
def test_query_path_random(seed, fail_seed, s, t):
    """Witness paths exist, avoid F, and sum to the exact distance."""
    graph = random_graph(seed)
    oracle = DISO(graph, tau=2, theta=4.0)
    failed = random_failures_from(graph, fail_seed, 6)
    expected = shortest_distance(graph, s, t, failed)
    distance, path = query_path(oracle, s, t, failed)
    if expected == INFINITY:
        assert distance == INFINITY
        assert path is None
        return
    assert distance == pytest.approx(expected)
    if s == t:
        assert path == []
    else:
        assert validate_path(oracle, path, s, t, failed) == (
            pytest.approx(expected)
        )
