"""Ablation bench: sparsity control in transit-set selection.

DESIGN.md design decision 1/3: the whole point of ISC's sigma/theta
machinery is a sparser distance graph; and on dense scale-free graphs
the explicit sparsification (DISO-S) buys query time back.  Both claims
are isolated here.
"""

from __future__ import annotations

from functools import lru_cache

from repro.cover.hpc import hpc_path_cover
from repro.cover.isc import isc_path_cover
from repro.oracle.diso import DISO
from repro.oracle.diso_s import DISOSparse
from repro.overlay.distance_graph import build_distance_graph

from bench_util import SEED, dataset, queries, run_query_batch


@lru_cache(maxsize=None)
def overlays():
    graph = dataset("NY")
    isc = isc_path_cover(graph, tau=4, theta=1.0).cover
    hpc = hpc_path_cover(graph, tau=4).cover
    isc_overlay, _ = build_distance_graph(graph, isc)
    hpc_overlay, _ = build_distance_graph(graph, hpc)
    return isc_overlay, hpc_overlay


def test_isc_overlay_construction(benchmark):
    graph = dataset("NY")
    cover = isc_path_cover(graph, tau=4, theta=1.0).cover
    overlay, trees = benchmark.pedantic(
        lambda: build_distance_graph(graph, cover), rounds=1, iterations=1
    )
    assert overlay.num_edges > 0
    assert trees


def test_isc_sparser_than_hpc(benchmark):
    isc_overlay, hpc_overlay = benchmark.pedantic(
        overlays, rounds=1, iterations=1
    )
    assert isc_overlay.num_edges <= hpc_overlay.num_edges


def test_diso_s_vs_diso_on_dense_graph(benchmark):
    """Sparsification pays on the dense POKE-like graph."""
    graph = dataset("POKE")
    oracle = DISOSparse(graph, beta=2.0, tau=3, theta=16.0)
    batch = queries("POKE", count=8)
    checksum = benchmark(run_query_batch, oracle, batch)
    assert checksum >= 0


def test_diso_plain_on_dense_graph(benchmark):
    graph = dataset("POKE")
    oracle = DISO(graph, tau=3, theta=16.0)
    batch = queries("POKE", count=8)
    checksum = benchmark(run_query_batch, oracle, batch)
    assert checksum >= 0
