"""Bench: frozen query plane vs dict engines (DISO and ADISO).

Measures per-query latency of the dict engines against their
``freeze()`` counterparts on a road network and a scale-free network in
the paper's standard 10^3-10^4 node range, with the paper's failure
workload (f_gen=5, p=0.0005).  Engines are timed in interleaved rounds
(dict batch, frozen batch, repeat) so machine-load drift hits both
sides equally; the reported number is the median over all rounds.

Every run first asserts exact answer parity between the two planes over
the whole batch — a benchmark of a wrong answer is worthless.

The frozen DISO cells additionally time the vectorized batch kernel
(``query_many``, :mod:`repro.oracle.batch_kernel`) against the scalar
frozen loop on the same oracle: one scalar pass and one ``query_many``
pass alternate within each round, and the batched number is the whole
batch's wall clock divided by the batch size.  Batches are large
(``BATCH_SIZE``) because the kernel's per-batch fixed costs only
amortize at scale — at the 25-query latency batches above the kernel is
*slower* than the scalar loop, which is why these are separate rows
rather than a replacement.  Two workloads are timed: the paper's
failure workload (every query carries ~5 on-path failures, keeping the
per-rank repair machinery hot) and a failure-free workload isolating
the sweep itself.  ADISO has no batched kernel (its merged-A* floats
are query-state dependent; ``query_many`` falls back to the scalar
loop), so only DISO rows exist.

Standalone usage (writes ``results/frozen_plane.txt`` and merges the
repo-root ``BENCH_query_latency.json``; ``merge_json`` stamps
``git_rev`` + ``cpu_count`` into every entry centrally, so latency
numbers stay attributable to the code and hardware that produced
them)::

    PYTHONPATH=src:benchmarks python benchmarks/bench_frozen_plane.py
    PYTHONPATH=src:benchmarks python benchmarks/bench_frozen_plane.py --smoke

``--smoke`` runs tiny graphs and two rounds — a CI-sized end-to-end
check of build, freeze, parity, and the reporting path (no files
written, no speedup asserted; micro-graph timings are pure noise).
"""

from __future__ import annotations

import argparse
import statistics
import time

from repro.graph.generators import road_network, scale_free_network
from repro.oracle.adiso import ADISO
from repro.oracle.diso import DISO
from repro.workload.queries import generate_queries

from bench_util import latency_summary, merge_latency_json, write_result

SEED = 7
QUERY_COUNT = 25
ROUNDS = 10
#: Queries per batched-kernel round — large enough to amortize the
#: kernel's per-batch fixed costs (array setup, affected discovery).
BATCH_SIZE = 300
BATCH_ROUNDS = 8
#: (row suffix, workload params) for the batched-kernel comparison.
BATCH_WORKLOADS = (
    ("", {"f_gen": 5, "p": 0.0005}),
    ("-nofail", {"f_gen": 0, "p": 0.0}),
)

#: (name, builder) — both inside the paper's standard evaluation range.
GRAPHS = (
    ("road2k", lambda: road_network(48, 48, seed=SEED)),
    ("scalefree1k5", lambda: scale_free_network(1500, seed=SEED)),
)
SMOKE_GRAPHS = (
    ("road-smoke", lambda: road_network(8, 8, seed=SEED)),
    ("scalefree-smoke", lambda: scale_free_network(100, seed=SEED)),
)

ORACLES = (
    ("DISO", lambda g: DISO(g, tau=4, theta=1.0)),
    ("ADISO", lambda g: ADISO(g, tau=4, theta=1.0, seed=SEED)),
)


def timed_batch(oracle, batch) -> list[float]:
    """Per-query wall-clock seconds for one pass over ``batch``."""
    samples = []
    for query in batch:
        started = time.perf_counter()
        oracle.query(query.source, query.target, query.failed)
        samples.append(time.perf_counter() - started)
    return samples


def compare_planes(graph, oracle_factory, rounds: int, query_count: int):
    """Build dict + frozen engines, assert parity, time both.

    Returns ``(dict_samples, frozen_samples, frozen_oracle)``.
    """
    dict_oracle = oracle_factory(graph)
    frozen_oracle = dict_oracle.freeze()
    batch = generate_queries(
        graph, query_count, f_gen=5, p=0.0005, seed=SEED
    )
    for query in batch:
        expected = dict_oracle.query(query.source, query.target, query.failed)
        got = frozen_oracle.query(query.source, query.target, query.failed)
        assert got == expected, (
            f"frozen/dict mismatch on {query}: {got} != {expected}"
        )
    dict_samples: list[float] = []
    frozen_samples: list[float] = []
    for _ in range(rounds):
        dict_samples.extend(timed_batch(dict_oracle, batch))
        frozen_samples.extend(timed_batch(frozen_oracle, batch))
    return dict_samples, frozen_samples, frozen_oracle


def compare_batched(
    frozen_oracle, graph, graph_name, rounds: int, batch_size: int
) -> list[dict]:
    """Scalar frozen loop vs ``query_many`` on one oracle, interleaved.

    Asserts exact parity between the batched kernel and the scalar
    loop over every workload first, then alternates one scalar pass and
    one batched pass per round so machine drift hits both sides
    equally.  Reports the median of per-round scalar medians against
    the median of per-round amortized batched cost.
    """
    rows = []
    for suffix, params in BATCH_WORKLOADS:
        batch = generate_queries(graph, batch_size, seed=SEED, **params)
        expected = [
            frozen_oracle.query(q.source, q.target, q.failed) for q in batch
        ]
        got = frozen_oracle.query_many(batch)
        assert got == expected, (
            f"query_many/scalar mismatch on {graph_name}{suffix}"
        )
        scalar_medians: list[float] = []
        amortized: list[float] = []
        for _ in range(rounds):
            scalar_medians.append(
                statistics.median(timed_batch(frozen_oracle, batch))
            )
            started = time.perf_counter()
            frozen_oracle.query_many(batch)
            amortized.append(
                (time.perf_counter() - started) / len(batch)
            )
        scalar_us = 1e6 * statistics.median(scalar_medians)
        batched_us = 1e6 * statistics.median(amortized)
        rows.append(
            {
                "graph": graph_name,
                "workload": "failures" if not suffix else "no-failures",
                "suffix": suffix,
                "batch_size": batch_size,
                "rounds": rounds,
                "scalar_median_us": round(scalar_us, 3),
                "batched_us_per_query": round(batched_us, 3),
                "speedup": round(scalar_us / batched_us, 3),
            }
        )
    return rows


def run(
    smoke: bool = False, rounds: int | None = None
) -> tuple[list[dict], list[dict]]:
    """Run every (graph, oracle) cell; return (rows, batched_rows)."""
    graphs = SMOKE_GRAPHS if smoke else GRAPHS
    rounds = rounds or (2 if smoke else ROUNDS)
    query_count = 10 if smoke else QUERY_COUNT
    batch_rounds = 2 if smoke else BATCH_ROUNDS
    batch_size = 12 if smoke else BATCH_SIZE
    rows = []
    batched_rows = []
    for graph_name, build in graphs:
        graph = build()
        for oracle_name, factory in ORACLES:
            dict_s, frozen_s, frozen_oracle = compare_planes(
                graph, factory, rounds, query_count
            )
            dict_median = statistics.median(dict_s)
            frozen_median = statistics.median(frozen_s)
            rows.append(
                {
                    "graph": graph_name,
                    "oracle": oracle_name,
                    "dict_samples": dict_s,
                    "frozen_samples": frozen_s,
                    "dict_median_us": 1e6 * dict_median,
                    "frozen_median_us": 1e6 * frozen_median,
                    "speedup": dict_median / frozen_median,
                    "build_s": frozen_oracle.preprocess_seconds
                    - frozen_oracle.freeze_seconds,
                    "freeze_s": frozen_oracle.freeze_seconds,
                }
            )
            print(
                f"{graph_name:>16} {oracle_name:>6}: "
                f"dict {rows[-1]['dict_median_us']:8.1f}us  "
                f"frozen {rows[-1]['frozen_median_us']:8.1f}us  "
                f"speedup {rows[-1]['speedup']:.2f}x  "
                f"(freeze {rows[-1]['freeze_s']:.3f}s)"
            )
            if oracle_name == "DISO":
                for row in compare_batched(
                    frozen_oracle, graph, graph_name,
                    batch_rounds, batch_size,
                ):
                    batched_rows.append(row)
                    print(
                        f"{graph_name:>16} batched{row['suffix']:<8}: "
                        f"scalar {row['scalar_median_us']:8.1f}us  "
                        f"batched {row['batched_us_per_query']:8.1f}us/q  "
                        f"speedup {row['speedup']:.2f}x  "
                        f"(B={row['batch_size']})"
                    )
    return rows, batched_rows


def format_rows(rows: list[dict], batched_rows: list[dict]) -> str:
    lines = [
        "Frozen query plane vs dict engines "
        "(median per-query latency, interleaved rounds)",
        f"{'graph':>16} {'oracle':>8} {'dict(us)':>10} "
        f"{'frozen(us)':>10} {'speedup':>8} {'freeze(s)':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row['graph']:>16} {row['oracle']:>8} "
            f"{row['dict_median_us']:>10.1f} {row['frozen_median_us']:>10.1f} "
            f"{row['speedup']:>7.2f}x {row['freeze_s']:>10.3f}"
        )
    if batched_rows:
        lines.append("")
        lines.append(
            "Vectorized batch kernel vs scalar frozen loop "
            "(DISO, interleaved rounds, amortized over the batch)"
        )
        lines.append(
            f"{'graph':>16} {'workload':>12} {'scalar(us)':>11} "
            f"{'batched(us/q)':>14} {'speedup':>8} {'batch':>6}"
        )
        for row in batched_rows:
            lines.append(
                f"{row['graph']:>16} {row['workload']:>12} "
                f"{row['scalar_median_us']:>11.1f} "
                f"{row['batched_us_per_query']:>14.1f} "
                f"{row['speedup']:>7.2f}x {row['batch_size']:>6}"
            )
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny graphs, two rounds, no files written",
    )
    parser.add_argument("--rounds", type=int, default=None)
    args = parser.parse_args()
    rows, batched_rows = run(smoke=args.smoke, rounds=args.rounds)
    if args.smoke:
        print("smoke run OK (parity held on every cell)")
        return
    write_result("frozen_plane", format_rows(rows, batched_rows))
    entries = {}
    for row in rows:
        build = row["build_s"]
        entries[f"{row['oracle']}@{row['graph']}"] = latency_summary(
            build, row["dict_samples"]
        )
        entries[f"{row['oracle']}-F@{row['graph']}"] = latency_summary(
            build + row["freeze_s"], row["frozen_samples"]
        )
    for row in batched_rows:
        entries[f"DISO-FB@{row['graph']}{row['suffix']}"] = {
            key: row[key]
            for key in (
                "batch_size", "rounds", "workload",
                "scalar_median_us", "batched_us_per_query", "speedup",
            )
        }
    path = merge_latency_json(entries)
    print(f"wrote {path}")
    print(format_rows(rows, batched_rows))


# ----------------------------------------------------------------------
# pytest entry points (small scale; the standalone main is the real run)
# ----------------------------------------------------------------------
def test_frozen_plane_parity_and_speed():
    rows, batched_rows = run(smoke=True)
    assert len(rows) == 4
    for row in rows:
        assert row["frozen_median_us"] > 0.0
    # One batched row per (DISO cell, workload); parity asserted inside.
    assert len(batched_rows) == 2 * len(BATCH_WORKLOADS)
    for row in batched_rows:
        assert row["batched_us_per_query"] > 0.0


if __name__ == "__main__":
    main()
