"""Tests for query workload generation and the dataset registry."""

from __future__ import annotations

import random

import pytest

from repro.pathing.dijkstra import shortest_distance, shortest_path
from repro.workload.datasets import (
    DATASETS,
    ROAD_DATASETS,
    SOCIAL_DATASETS,
    dataset_statistics,
    load_dataset,
)
from repro.workload.queries import (
    essential_failures,
    generate_queries,
    generate_query,
    generate_zipf_queries,
    random_failures,
)
from repro.workload.scenarios import sample_bursty_query_times


class TestEssentialFailures:
    def test_failures_lie_on_evolving_shortest_paths(self, small_road):
        rng = random.Random(3)
        failed = essential_failures(small_road, 0, 140, 4, rng)
        assert len(failed) == 4
        for edge in failed:
            assert small_road.has_edge(*edge)

    def test_each_failure_changes_the_answer(self, small_road):
        """Every essential failure strictly constrains the path."""
        rng = random.Random(5)
        failed = essential_failures(small_road, 0, 140, 5, rng)
        unrestricted = shortest_distance(small_road, 0, 140)
        restricted = shortest_distance(small_road, 0, 140, failed)
        assert restricted >= unrestricted

    def test_stops_when_disconnected(self):
        from repro.graph.generators import path_network

        g = path_network(4, bidirectional=False)
        rng = random.Random(1)
        failed = essential_failures(g, 0, 3, 10, rng)
        # The single path has 3 edges; after one failure 3 is
        # unreachable, so at most 1 essential failure is generated.
        assert len(failed) == 1

    def test_final_path_avoids_failures(self, small_road):
        rng = random.Random(9)
        failed = essential_failures(small_road, 5, 130, 3, rng)
        path = shortest_path(small_road, 5, 130, failed)
        if path is not None:
            assert not (set(path) & failed)


class TestRandomFailures:
    def test_zero_probability(self, small_road):
        rng = random.Random(1)
        assert random_failures(small_road, 0.0, rng) == set()

    def test_all_edges_exist(self, small_road):
        rng = random.Random(1)
        failed = random_failures(small_road, 0.05, rng)
        for edge in failed:
            assert small_road.has_edge(*edge)

    def test_probability_scales_count(self, small_road):
        rng = random.Random(1)
        low = len(random_failures(small_road, 0.01, rng))
        rng = random.Random(1)
        high = len(random_failures(small_road, 0.2, rng))
        assert high > low

    def test_exclusion(self, small_road):
        rng = random.Random(2)
        exclude = set(list(small_road.edge_set())[:50])
        failed = random_failures(small_road, 0.5, rng, exclude=exclude)
        assert not (failed & exclude)

    def test_expected_count_reasonable(self, small_social):
        # Binomial(m, 0.1) should land near m * 0.1.
        m = small_social.number_of_edges()
        counts = []
        for seed in range(20):
            rng = random.Random(seed)
            counts.append(len(random_failures(small_social, 0.1, rng)))
        mean = sum(counts) / len(counts)
        assert 0.06 * m <= mean <= 0.14 * m


class TestGenerateQueries:
    def test_deterministic(self, small_road):
        a = generate_queries(small_road, 5, seed=3)
        b = generate_queries(small_road, 5, seed=3)
        assert a == b

    def test_count_and_distinct_endpoints(self, small_road):
        queries = generate_queries(small_road, 10, seed=1)
        assert len(queries) == 10
        for q in queries:
            assert q.source != q.target

    def test_essential_count_recorded(self, small_road):
        query = generate_queries(small_road, 1, f_gen=3, p=0.0, seed=4)[0]
        assert query.essential_count <= 3
        assert query.num_failures == query.essential_count

    def test_generate_query_direct(self, small_road):
        query = generate_query(small_road, random.Random(4), f_gen=2, p=0.0)
        assert query.source != query.target
        assert query.essential_count <= 2

    def test_zero_failures(self, small_road):
        queries = generate_queries(small_road, 3, f_gen=0, p=0.0, seed=1)
        assert all(q.num_failures == 0 for q in queries)

    def test_node_restriction(self, small_road):
        nodes = [0, 1, 2, 3]
        queries = generate_queries(small_road, 8, seed=2, nodes=nodes)
        for q in queries:
            assert q.source in nodes
            assert q.target in nodes


class TestZipfQueries:
    def test_deterministic(self, small_road):
        first = generate_zipf_queries(small_road, 50, seed=11)
        again = generate_zipf_queries(small_road, 50, seed=11)
        assert first == again
        assert generate_zipf_queries(small_road, 50, seed=12) != first

    def test_pairs_come_from_bounded_pool(self, small_road):
        queries = generate_zipf_queries(
            small_road, 200, pool_size=10, seed=3
        )
        pairs = {(q.source, q.target) for q in queries}
        assert len(pairs) <= 10
        assert all(q.source != q.target for q in queries)

    def test_triples_repeat_exactly(self, small_road):
        """The cache-relevant property: full (s, t, F) keys recur —
        the same pair reuses the same precomputed failure variants."""
        queries = generate_zipf_queries(
            small_road, 300, pool_size=8, variants_per_pair=3, seed=5
        )
        triples = {(q.source, q.target, q.failed) for q in queries}
        assert len(triples) <= 8 * 3
        # Skew means substantial repetition, not near-unique keys.
        assert len(triples) < len(queries) / 4

    def test_skew_concentrates_on_head(self, small_road):
        queries = generate_zipf_queries(
            small_road, 500, pool_size=25, skew=1.2, seed=7
        )
        counts: dict[tuple[int, int], int] = {}
        for q in queries:
            pair = (q.source, q.target)
            counts[pair] = counts.get(pair, 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        # The hottest pair dominates the median pair by a wide margin.
        assert ranked[0] >= 5 * ranked[len(ranked) // 2]

    def test_failure_variants_include_failure_free(self, small_road):
        queries = generate_zipf_queries(
            small_road, 200, pool_size=5, seed=9
        )
        assert any(q.num_failures == 0 for q in queries)
        assert any(q.num_failures > 0 for q in queries)
        for q in queries:
            if q.essential_count:
                assert q.num_failures >= q.essential_count

    def test_validation(self, small_road):
        with pytest.raises(ValueError):
            generate_zipf_queries(small_road, 10, pool_size=0)
        with pytest.raises(ValueError):
            generate_zipf_queries(small_road, 10, skew=0.0)
        with pytest.raises(ValueError):
            generate_zipf_queries(small_road, 10, variants_per_pair=0)
        with pytest.raises(ValueError):
            generate_zipf_queries(small_road, -1)


class TestBurstyQueryTimes:
    def test_deterministic_sorted_and_bounded(self):
        first = sample_bursty_query_times(200, 100.0, seed=4)
        again = sample_bursty_query_times(200, 100.0, seed=4)
        assert first == again
        assert first == sorted(first)
        assert all(0.0 <= t <= 100.0 for t in first)
        assert len(first) == 200

    def test_bursts_concentrate_arrivals(self):
        times = sample_bursty_query_times(
            400, 100.0, bursts=2, burst_fraction=0.9,
            burst_width=0.02, seed=6,
        )
        # Bin into 1%-wide windows: ~90% of arrivals land in a handful
        # of bins near the two burst centres; uniform traffic would
        # spread ~4 per bin.
        bins: dict[int, int] = {}
        for t in times:
            bins[int(t)] = bins.get(int(t), 0) + 1
        assert max(bins.values()) > 50

    def test_zero_fraction_is_uniformish(self):
        times = sample_bursty_query_times(
            300, 100.0, burst_fraction=0.0, seed=8
        )
        bins: dict[int, int] = {}
        for t in times:
            bins[int(t) // 10] = bins.get(int(t) // 10, 0) + 1
        # Ten decile bins, none wildly over-full.
        assert max(bins.values()) < 80

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_bursty_query_times(10, 0.0)
        with pytest.raises(ValueError):
            sample_bursty_query_times(10, 1.0, bursts=0)
        with pytest.raises(ValueError):
            sample_bursty_query_times(10, 1.0, burst_fraction=1.5)
        with pytest.raises(ValueError):
            sample_bursty_query_times(10, 1.0, burst_width=0.0)
        with pytest.raises(ValueError):
            sample_bursty_query_times(-1, 1.0)


class TestDatasets:
    def test_registry_families(self):
        for name in ROAD_DATASETS:
            assert DATASETS[name].kind == "road"
        for name in SOCIAL_DATASETS:
            assert DATASETS[name].kind == "social"

    def test_load_road(self):
        g = load_dataset("NY", scale=0.3)
        stats = dataset_statistics(g)
        assert stats["avg_degree"] <= 3.5
        assert stats["max_degree"] <= 16

    def test_load_social(self):
        g = load_dataset("DBLP", scale=0.3)
        stats = dataset_statistics(g)
        assert stats["max_degree"] > 3 * stats["avg_degree"]

    def test_poke_is_dense(self):
        g = load_dataset("POKE", scale=0.3)
        assert g.average_degree() > 10

    def test_scale_grows_graph(self):
        small = load_dataset("NY", scale=0.2)
        large = load_dataset("NY", scale=0.6)
        assert large.number_of_nodes() > small.number_of_nodes()

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("MARS")

    def test_deterministic(self):
        assert load_dataset("CAL", scale=0.2) == load_dataset(
            "CAL", scale=0.2
        )
